package bench

import (
	"fmt"
	"io"

	"redfat/internal/fuzz"
	"redfat/internal/kraken"
	"redfat/internal/redfat"
	"redfat/internal/relf"
	"redfat/internal/rtlib"
	"redfat/internal/telemetry"
	"redfat/internal/workload"
)

// TacticRow reports the patch-tactic mix for one instrumented binary —
// the ablation DESIGN.md calls out for the rewriting substrate (how often
// the direct jmp32, byte-stealing and trap tactics fire).
type TacticRow struct {
	Name       string `json:"name"`
	TextBytes  int    `json:"text_bytes"`
	Checks     int    `json:"checks"`
	T1         int    `json:"t1"`
	T2         int    `json:"t2"`
	T3         int    `json:"t3"`
	TrampBytes int    `json:"tramp_bytes"`
}

// Tactics instruments every SPEC-like benchmark plus the Chrome-scale
// image with the production configuration and reports tactic statistics.
// Each binary is one pool unit.
func (h *Harness) Tactics(fillerFuncs int, w io.Writer) ([]TacticRow, error) {
	bms := workload.All()
	n := len(bms) + 1 // + the Chrome-scale image
	name := func(i int) string {
		if i == len(bms) {
			return "chrome"
		}
		return bms[i].Name
	}
	rows, err := fanOut(h, "tactics", n, name,
		func(i int, _ *telemetry.Registry) (TacticRow, error) {
			var (
				bin *relf.Binary
				err error
			)
			if i == len(bms) {
				bin, err = kraken.Build(fillerFuncs)
			} else {
				bin, err = bms[i].Build()
			}
			if err != nil {
				return TacticRow{}, err
			}
			_, rep, err := redfat.Harden(bin, redfat.Defaults())
			if err != nil {
				return TacticRow{}, err
			}
			return TacticRow{
				Name: name(i), TextBytes: len(bin.Text().Data), Checks: rep.Checks,
				T1: rep.Rewrite.T1, T2: rep.Rewrite.T2, T3: rep.Rewrite.T3,
				TrampBytes: rep.Rewrite.TrampBytes,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	if w != nil {
		fmt.Fprintf(w, "%-12s %10s %8s %8s %8s %8s %10s\n",
			"binary", "text(B)", "checks", "T1", "T2", "T3", "tramp(B)")
		for _, r := range rows {
			fmt.Fprintf(w, "%-12s %10d %8d %8d %8d %8d %10d\n",
				r.Name, r.TextBytes, r.Checks, r.T1, r.T2, r.T3, r.TrampBytes)
		}
	}
	return rows, nil
}

// Tactics is the serial form of Harness.Tactics.
func Tactics(fillerFuncs int, w io.Writer) ([]TacticRow, error) {
	return (&Harness{}).Tactics(fillerFuncs, w)
}

// BatchRow reports the overhead at one maximum batch width.
type BatchRow struct {
	MaxBatch int     `json:"max_batch"`
	Slowdown float64 `json:"slowdown"`
}

// BatchSweep measures the benefit of check batching as a function of the
// maximum trampoline batch width, on a store-dense benchmark. The build
// and baseline run once, serially; the widths fan out as pool units.
func (h *Harness) BatchSweep(benchName string, scale float64, w io.Writer) ([]BatchRow, error) {
	bm := workload.ByName(benchName)
	if bm == nil {
		return nil, fmt.Errorf("bench: unknown benchmark %q", benchName)
	}
	bm = scaled(bm, scale)
	bin, err := bm.Build()
	if err != nil {
		return nil, err
	}
	base, err := rtlib.RunBaseline(bin, rtlib.RunConfig{Input: bm.RefInput(), Metrics: h.Metrics})
	if err != nil {
		return nil, err
	}
	widths := []int{1, 2, 4, 8, 16}
	rows, err := fanOut(h, "batch", len(widths),
		func(i int) string { return fmt.Sprintf("width-%d", widths[i]) },
		func(i int, reg *telemetry.Registry) (BatchRow, error) {
			width := widths[i]
			opt := redfat.Defaults()
			opt.MaxBatch = width
			if width == 1 {
				opt.Batch = false
				opt.Merge = false
			}
			hard, _, err := redfat.Harden(bin, opt)
			if err != nil {
				return BatchRow{}, err
			}
			v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{Input: bm.RefInput(), Metrics: reg})
			if err != nil {
				return BatchRow{}, err
			}
			return BatchRow{MaxBatch: width,
				Slowdown: float64(v.Cycles) / float64(base.Cycles)}, nil
		})
	if err != nil {
		return nil, err
	}
	if w != nil {
		for _, r := range rows {
			fmt.Fprintf(w, "max batch %2d: %6.2fx\n", r.MaxBatch, r.Slowdown)
		}
	}
	return rows, nil
}

// BatchSweep is the serial form of Harness.BatchSweep.
func BatchSweep(benchName string, scale float64, w io.Writer) ([]BatchRow, error) {
	return (&Harness{}).BatchSweep(benchName, scale, w)
}

// ClobberRow compares trampoline save/restore cost with and without the
// dead-register specialization (paper §6, low-level optimizations).
type ClobberRow struct {
	Specialized bool    `json:"specialized"`
	Slowdown    float64 `json:"slowdown"`
}

// ClobberSweep measures the benefit of the dead-register trampoline
// specialization on one benchmark. The two variants fan out as pool units.
func (h *Harness) ClobberSweep(benchName string, scale float64, w io.Writer) ([]ClobberRow, error) {
	bm := workload.ByName(benchName)
	if bm == nil {
		return nil, fmt.Errorf("bench: unknown benchmark %q", benchName)
	}
	bm = scaled(bm, scale)
	bin, err := bm.Build()
	if err != nil {
		return nil, err
	}
	base, err := rtlib.RunBaseline(bin, rtlib.RunConfig{Input: bm.RefInput(), Metrics: h.Metrics})
	if err != nil {
		return nil, err
	}
	specs := []bool{false, true}
	rows, err := fanOut(h, "clobber", len(specs),
		func(i int) string { return fmt.Sprintf("specialized-%v", specs[i]) },
		func(i int, reg *telemetry.Registry) (ClobberRow, error) {
			opt := redfat.Defaults()
			opt.NoClobberSpec = !specs[i]
			hard, _, err := redfat.Harden(bin, opt)
			if err != nil {
				return ClobberRow{}, err
			}
			v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{Input: bm.RefInput(), Metrics: reg})
			if err != nil {
				return ClobberRow{}, err
			}
			return ClobberRow{Specialized: specs[i],
				Slowdown: float64(v.Cycles) / float64(base.Cycles)}, nil
		})
	if err != nil {
		return nil, err
	}
	if w != nil {
		for _, r := range rows {
			fmt.Fprintf(w, "clobber specialization %-5v: %6.2fx\n", r.Specialized, r.Slowdown)
		}
	}
	return rows, nil
}

// ClobberSweep is the serial form of Harness.ClobberSweep.
func ClobberSweep(benchName string, scale float64, w io.Writer) ([]ClobberRow, error) {
	return (&Harness{}).ClobberSweep(benchName, scale, w)
}

// FuzzRow compares allow-list coverage with and without the
// coverage-guided profiling boost (paper §5 / E9AFL).
type FuzzRow struct {
	Runs     int     `json:"runs"`
	Coverage float64 `json:"coverage"`
}

// FuzzBoostStudy measures production coverage on a train-gated benchmark
// as the fuzzing budget grows. The build and profile rewrite run once,
// serially; the budgets fan out as pool units.
func (h *Harness) FuzzBoostStudy(benchName string, budgets []int, w io.Writer) ([]FuzzRow, error) {
	bm := workload.ByName(benchName)
	if bm == nil {
		return nil, fmt.Errorf("bench: unknown benchmark %q", benchName)
	}
	bm = scaled(bm, 0.02)
	bin, err := bm.Build()
	if err != nil {
		return nil, err
	}
	profOpt := redfat.Defaults()
	profOpt.Profile = true
	profOpt.Merge = false
	profBin, _, err := redfat.Harden(bin, profOpt)
	if err != nil {
		return nil, err
	}
	rows, err := fanOut(h, "fuzz", len(budgets),
		func(i int) string { return fmt.Sprintf("budget-%d", budgets[i]) },
		func(i int, reg *telemetry.Registry) (FuzzRow, error) {
			res, err := fuzz.Boost(profBin, [][]uint64{bm.TrainInput()}, fuzz.Options{
				MaxRuns: budgets[i], MaxCycles: 50_000_000,
			})
			if err != nil {
				return FuzzRow{}, err
			}
			opt := redfat.Defaults()
			opt.AllowList = res.Profiler.AllowList()
			hard, _, err := redfat.Harden(bin, opt)
			if err != nil {
				return FuzzRow{}, err
			}
			_, rt, err := rtlib.RunHardened(hard, rtlib.RunConfig{Input: bm.RefInput(), Metrics: reg})
			if err != nil {
				return FuzzRow{}, err
			}
			return FuzzRow{Runs: budgets[i], Coverage: rt.Coverage()}, nil
		})
	if err != nil {
		return nil, err
	}
	if w != nil {
		for _, r := range rows {
			fmt.Fprintf(w, "fuzz budget %4d runs: coverage %5.1f%%\n", r.Runs, 100*r.Coverage)
		}
	}
	return rows, nil
}

// FuzzBoostStudy is the serial form of Harness.FuzzBoostStudy.
func FuzzBoostStudy(benchName string, budgets []int, w io.Writer) ([]FuzzRow, error) {
	return (&Harness{}).FuzzBoostStudy(benchName, budgets, w)
}

// DataflowRow reports total guest cycles over a workload suite for one
// dataflow-engine configuration (the §6 knobs the global analyses add).
type DataflowRow struct {
	ElimDom       bool    `json:"elim_dom"`
	LocalLiveness bool    `json:"local_liveness"`
	TotalCycles   uint64  `json:"total_cycles"`
	Slowdown      float64 `json:"slowdown"`
}

// dataflowCombos orders the knob matrix from least to most analysis:
// block-local liveness without elimination first (the pre-engine
// behavior), whole-CFG liveness plus dominator elimination last (the
// production default).
var dataflowCombos = []struct{ elimDom, local bool }{
	{false, true},  // local liveness, no dominator elimination
	{false, false}, // global liveness only
	{true, true},   // dominator elimination, local liveness
	{true, false},  // global liveness + dominator elimination
}

// DataflowSweep measures the dataflow-engine ablation: every combination
// of {ElimDom} × {LocalLiveness} over the named benchmarks (nil = the
// full suite). Builds and baselines run once per benchmark, serially;
// the benchmark × configuration grid fans out as pool units.
func (h *Harness) DataflowSweep(names []string, scale float64, w io.Writer) ([]DataflowRow, error) {
	var bms []*workload.Benchmark
	if names == nil {
		bms = workload.All()
	} else {
		for _, name := range names {
			bm := workload.ByName(name)
			if bm == nil {
				return nil, fmt.Errorf("bench: unknown benchmark %q", name)
			}
			bms = append(bms, bm)
		}
	}
	type prep struct {
		bm    *workload.Benchmark
		bin   *relf.Binary
		base  uint64
		exitC uint64
	}
	preps := make([]*prep, len(bms))
	for i, bm := range bms {
		bm = scaled(bm, scale)
		bin, err := bm.Build()
		if err != nil {
			return nil, err
		}
		v, err := rtlib.RunBaseline(bin, rtlib.RunConfig{Input: bm.RefInput(), Metrics: h.Metrics})
		if err != nil {
			return nil, err
		}
		preps[i] = &prep{bm: bm, bin: bin, base: v.Cycles, exitC: v.ExitCode}
	}
	nc := len(dataflowCombos)
	cells, err := fanOut(h, "dataflow", len(preps)*nc,
		func(i int) string {
			c := dataflowCombos[i%nc]
			return fmt.Sprintf("%s/dom=%v,local=%v", preps[i/nc].bm.Name, c.elimDom, c.local)
		},
		func(i int, reg *telemetry.Registry) (uint64, error) {
			p, c := preps[i/nc], dataflowCombos[i%nc]
			opt := redfat.Defaults()
			opt.ElimDom = c.elimDom
			opt.LocalLiveness = c.local
			hard, _, err := redfat.Harden(p.bin, opt)
			if err != nil {
				return 0, err
			}
			v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{Input: p.bm.RefInput(), Metrics: reg})
			if err != nil {
				return 0, err
			}
			if v.ExitCode != p.exitC {
				return 0, fmt.Errorf("bench: %s checksum changed under dom=%v local=%v",
					p.bm.Name, c.elimDom, c.local)
			}
			return v.Cycles, nil
		})
	if err != nil {
		return nil, err
	}
	var baseTotal uint64
	for _, p := range preps {
		baseTotal += p.base
	}
	rows := make([]DataflowRow, nc)
	for ci, c := range dataflowCombos {
		var total uint64
		for bi := range preps {
			total += cells[bi*nc+ci]
		}
		rows[ci] = DataflowRow{
			ElimDom: c.elimDom, LocalLiveness: c.local,
			TotalCycles: total, Slowdown: float64(total) / float64(baseTotal),
		}
	}
	if w != nil {
		for _, r := range rows {
			fmt.Fprintf(w, "elimdom=%-5v local-liveness=%-5v: %14d cycles %6.2fx\n",
				r.ElimDom, r.LocalLiveness, r.TotalCycles, r.Slowdown)
		}
		before, after := rows[0].TotalCycles, rows[len(rows)-1].TotalCycles
		if before > 0 {
			fmt.Fprintf(w, "global liveness + dominator elimination: %d cycles saved (%.2f%%)\n",
				int64(before)-int64(after), 100*(1-float64(after)/float64(before)))
		}
	}
	return rows, nil
}

// DataflowSweep is the serial form of Harness.DataflowSweep.
func DataflowSweep(names []string, scale float64, w io.Writer) ([]DataflowRow, error) {
	return (&Harness{}).DataflowSweep(names, scale, w)
}

// IndirectRow reports one {indirect-flow recovery} × {dominator
// elimination} combination over the switch-dense suite: total guest
// cycles, the recovered-edge claims the rewriter made, and the dominated
// checks it removed.
type IndirectRow struct {
	NoIndirect  bool    `json:"no_indirect"`
	ElimDom     bool    `json:"elim_dom"`
	TotalCycles uint64  `json:"total_cycles"`
	Slowdown    float64 `json:"slowdown"`
	Resolved    int     `json:"resolved"`       // recovered indirect-flow claims
	Eliminated  int     `json:"elim_dominated"` // checks removed as dominated
}

// indirectCombos orders the knob matrix from least to most analysis:
// recovery off first, the production default (recovery + dominator
// elimination) last. The recovery-off/dom row is the interesting
// counterfactual: eliminations its Unknown frontier blocks are exactly
// what the +ind rows unlock.
var indirectCombos = []struct{ noInd, elimDom bool }{
	{true, false},  // no recovery, no dominator elimination
	{true, true},   // no recovery, dominator elimination
	{false, false}, // recovery, no dominator elimination
	{false, true},  // recovery + dominator elimination (production)
}

// IndirectSweep measures the indirect-flow-recovery ablation: every
// combination of {NoIndirect} × {ElimDom} over the named benchmarks
// (nil = the switch-dense suite, the marker-built workloads where
// recovery has edges to find). Builds and baselines run once per
// benchmark, serially; the benchmark × configuration grid fans out as
// pool units. Every cell's exit checksum is asserted against the
// baseline — recovery must never change guest results.
func (h *Harness) IndirectSweep(names []string, scale float64, w io.Writer) ([]IndirectRow, error) {
	var bms []*workload.Benchmark
	if names == nil {
		bms = workload.SwitchDense()
	} else {
		for _, name := range names {
			bm := workload.ByName(name)
			if bm == nil {
				return nil, fmt.Errorf("bench: unknown benchmark %q", name)
			}
			bms = append(bms, bm)
		}
	}
	type prep struct {
		bm    *workload.Benchmark
		bin   *relf.Binary
		base  uint64
		exitC uint64
	}
	preps := make([]*prep, len(bms))
	for i, bm := range bms {
		bm = scaled(bm, scale)
		bin, err := bm.Build()
		if err != nil {
			return nil, err
		}
		v, err := rtlib.RunBaseline(bin, rtlib.RunConfig{Input: bm.RefInput(), Metrics: h.Metrics})
		if err != nil {
			return nil, err
		}
		preps[i] = &prep{bm: bm, bin: bin, base: v.Cycles, exitC: v.ExitCode}
	}
	type cell struct {
		cycles   uint64
		resolved int
		elim     int
	}
	nc := len(indirectCombos)
	cells, err := fanOut(h, "indirect", len(preps)*nc,
		func(i int) string {
			c := indirectCombos[i%nc]
			return fmt.Sprintf("%s/noind=%v,dom=%v", preps[i/nc].bm.Name, c.noInd, c.elimDom)
		},
		func(i int, reg *telemetry.Registry) (cell, error) {
			p, c := preps[i/nc], indirectCombos[i%nc]
			opt := redfat.Defaults()
			opt.NoIndirect = c.noInd
			opt.ElimDom = c.elimDom
			hard, rep, err := redfat.Harden(p.bin, opt)
			if err != nil {
				return cell{}, err
			}
			v, _, err := rtlib.RunHardened(hard,
				rtlib.RunConfig{Input: p.bm.RefInput(), NoIndirect: c.noInd, Metrics: reg})
			if err != nil {
				return cell{}, err
			}
			if v.ExitCode != p.exitC {
				return cell{}, fmt.Errorf("bench: %s checksum changed under noind=%v dom=%v",
					p.bm.Name, c.noInd, c.elimDom)
			}
			return cell{cycles: v.Cycles, resolved: rep.IndirectResolved,
				elim: rep.ElimDominated}, nil
		})
	if err != nil {
		return nil, err
	}
	var baseTotal uint64
	for _, p := range preps {
		baseTotal += p.base
	}
	rows := make([]IndirectRow, nc)
	for ci, c := range indirectCombos {
		var total uint64
		var resolved, elim int
		for bi := range preps {
			cl := cells[bi*nc+ci]
			total += cl.cycles
			resolved += cl.resolved
			elim += cl.elim
		}
		rows[ci] = IndirectRow{
			NoIndirect: c.noInd, ElimDom: c.elimDom,
			TotalCycles: total, Slowdown: float64(total) / float64(baseTotal),
			Resolved: resolved, Eliminated: elim,
		}
	}
	if w != nil {
		for _, r := range rows {
			fmt.Fprintf(w, "noindirect=%-5v elimdom=%-5v: %14d cycles %6.2fx  resolved %4d  elim-dominated %5d\n",
				r.NoIndirect, r.ElimDom, r.TotalCycles, r.Slowdown, r.Resolved, r.Eliminated)
		}
		blocked, unlocked := rows[1], rows[len(rows)-1]
		fmt.Fprintf(w, "recovered edges unlocked %d dominated-check eliminations (%d → %d) and saved %d cycles\n",
			unlocked.Eliminated-blocked.Eliminated, blocked.Eliminated, unlocked.Eliminated,
			int64(blocked.TotalCycles)-int64(unlocked.TotalCycles))
	}
	return rows, nil
}

// IndirectSweep is the serial form of Harness.IndirectSweep.
func IndirectSweep(names []string, scale float64, w io.Writer) ([]IndirectRow, error) {
	return (&Harness{}).IndirectSweep(names, scale, w)
}
