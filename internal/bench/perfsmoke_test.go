package bench_test

import (
	"testing"

	"redfat/internal/redfat"
	"redfat/internal/rtlib"
	"redfat/internal/workload"
)

// TestPerfSmokeLibcSpan guards the tentpole win of the libc span
// intrinsics: under full hardening, copying through the span-checked
// memcpy intrinsic must cost at least 5x fewer guest cycles than the
// same copy through a per-access-checked guest byte loop. Guest cycles
// are deterministic, so unlike the wall-clock smokes this bound is exact
// and safe on loaded CI hosts.
func TestPerfSmokeLibcSpan(t *testing.T) {
	if testing.Short() {
		t.Skip("perf smoke")
	}
	run := func(bm *workload.Benchmark) (cycles uint64, exit uint64) {
		t.Helper()
		bin, err := bm.Build()
		if err != nil {
			t.Fatalf("%s: %v", bm.Name, err)
		}
		hard, _, err := redfat.Harden(bin, redfat.Defaults())
		if err != nil {
			t.Fatalf("%s: %v", bm.Name, err)
		}
		v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{Input: bm.RefInput()})
		if err != nil {
			t.Fatalf("%s: %v", bm.Name, err)
		}
		if len(v.Errors) != 0 {
			t.Fatalf("%s: false positives: %v", bm.Name, v.Errors)
		}
		return v.Cycles, v.ExitCode
	}
	for _, tw := range workload.LibcTwins() {
		loopCycles, loopExit := run(tw.Loop)
		intrCycles, intrExit := run(tw.Intr)
		if loopExit != intrExit {
			t.Errorf("%s: twin checksums differ: loop %d, intrinsic %d",
				tw.Name, loopExit, intrExit)
		}
		ratio := float64(loopCycles) / float64(intrCycles)
		t.Logf("%s: loop %d cycles, intrinsic %d cycles (%.1fx)",
			tw.Name, loopCycles, intrCycles, ratio)
		if tw.Name == "memcpy" && ratio < 5 {
			t.Errorf("%s: intrinsic only %.1fx faster than checked loop, want >= 5x",
				tw.Name, ratio)
		}
		if ratio < 1 {
			t.Errorf("%s: intrinsic slower than the checked loop (%.2fx)", tw.Name, ratio)
		}
	}
}
