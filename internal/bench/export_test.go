package bench

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	rows := []*Table1Row{
		{Coverage: 0.5, Unopt: 2, Elim: 2, Batch: 2, Merge: 2, NoSize: 2, NoReads: 2, Memcheck: 2},
		{Coverage: 1.0, Unopt: 8, Elim: 8, Batch: 8, Merge: 8, NoSize: 8, NoReads: 8, Memcheck: 8},
	}
	s := Summarize(rows)
	if math.Abs(s.MeanCoverage-0.75) > 1e-9 {
		t.Errorf("mean coverage = %v, want 0.75", s.MeanCoverage)
	}
	if math.Abs(s.Merge-4) > 1e-9 { // geomean(2, 8) = 4
		t.Errorf("merge geomean = %v, want 4", s.Merge)
	}
}

func TestResultsWriteJSON(t *testing.T) {
	summary := Summarize(nil)
	r := &Results{
		Scale: 0.5,
		Table1: []*Table1Row{{
			Name: "mcf", Coverage: 0.9, BaselineCycles: 1000,
			Unopt: 9.5, Merge: 2.5, ChecksumOK: true,
		}},
		Table1Summary: &summary,
		Table2:        []Table2Row{{ID: "CVE-2012-4295 (wireshark)", Total: 1, RedFat: 1}},
		Figure8:       &Figure8Result{Rows: []Fig8Row{{Name: "astar", Slowdown: 1.3}}, GeoMean: 1.3},
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Results
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(back.Table1) != 1 || back.Table1[0].Name != "mcf" || back.Table1[0].Merge != 2.5 {
		t.Errorf("table1 round-trip: %+v", back.Table1)
	}
	if back.Table2[0].RedFat != 1 || back.Figure8.GeoMean != 1.3 {
		t.Errorf("round-trip lost values: %+v", back)
	}
	if back.FalsePositives != nil || back.Ablation != nil {
		t.Error("sections that did not run must be omitted")
	}
	// The snake_case key contract for downstream consumers.
	for _, key := range []string{`"baseline_cycles"`, `"checksum_ok"`, `"table1_summary"`} {
		if !bytes.Contains(buf.Bytes(), []byte(key)) {
			t.Errorf("JSON missing key %s:\n%s", key, buf.String())
		}
	}
}
