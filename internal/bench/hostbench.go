package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"redfat/internal/rtlib"
	"redfat/internal/workload"
)

// Host-side performance benchmarks. Unlike every other experiment in this
// package — which measures deterministic guest cycles — these measure
// host wall-clock: how fast the interpreter dispatches and how well the
// experiment harness scales over the worker pool. Guest results are
// identical across all of these configurations; only elapsed time moves.

// DispatchHostBench compares the interpreter's two dispatch strategies on
// an uninstrumented workload: the legacy per-instruction map icache vs the
// decoded basic-block cache.
type DispatchHostBench struct {
	GuestInsts     uint64  `json:"guest_insts"`     // instructions retired per run
	MapNsPerInst   float64 `json:"map_ns_per_inst"` // legacy map icache
	BlockNsPerInst float64 `json:"block_ns_per_inst"`
	MapMIPS        float64 `json:"map_mips"` // guest MIPS (million insts / wall-second)
	BlockMIPS      float64 `json:"block_mips"`
	Improvement    float64 `json:"improvement"` // fractional dispatch-time reduction
}

// Table1HostBench compares serial and parallel wall-clock for the Table 1
// pipeline at a reduced scale.
type Table1HostBench struct {
	Scale      float64 `json:"scale"`
	Parallel   int     `json:"parallel"`
	SerialNs   int64   `json:"serial_ns"`
	ParallelNs int64   `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"`
}

// HostBenchResult is the machine-readable output of RunHostBench
// (exported by rfbench -hostbench to results/BENCH_host.json).
type HostBenchResult struct {
	GOOS      string            `json:"goos"`
	GOARCH    string            `json:"goarch"`
	GoVersion string            `json:"go_version"`
	NumCPU    int               `json:"num_cpu"`
	Dispatch  DispatchHostBench `json:"vm_dispatch"`
	Table1    Table1HostBench   `json:"table1_parallel"`
}

// RunHostBench measures both host-side benchmarks: VM dispatch (map vs
// block cache) and Table 1 harness scaling (serial vs parallel pool).
func RunHostBench(parallel int, scale float64) (*HostBenchResult, error) {
	res := &HostBenchResult{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
	}
	if err := res.measureDispatch(); err != nil {
		return nil, err
	}
	if err := res.measureTable1(parallel, scale); err != nil {
		return nil, err
	}
	return res, nil
}

func (r *HostBenchResult) measureDispatch() error {
	bm := workload.ByName("bzip2")
	cp := *bm
	cp.RefScale = 20000
	bin, err := cp.Build()
	if err != nil {
		return err
	}
	input := cp.RefInput()
	probe, err := rtlib.RunBaseline(bin, rtlib.RunConfig{Input: input})
	if err != nil {
		return err
	}
	insts := probe.Insts

	var runErr error
	measure := func(noBlock bool) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rtlib.RunBaseline(bin, rtlib.RunConfig{
					Input: input, NoBlockCache: noBlock,
				}); err != nil {
					runErr = err
					return
				}
			}
		})
	}
	mapRes := measure(true)
	blockRes := measure(false)
	if runErr != nil {
		return runErr
	}

	r.Dispatch = DispatchHostBench{
		GuestInsts:     insts,
		MapNsPerInst:   float64(mapRes.NsPerOp()) / float64(insts),
		BlockNsPerInst: float64(blockRes.NsPerOp()) / float64(insts),
		MapMIPS:        mips(insts, mapRes.NsPerOp()),
		BlockMIPS:      mips(insts, blockRes.NsPerOp()),
	}
	if mapRes.NsPerOp() > 0 {
		r.Dispatch.Improvement = 1 - float64(blockRes.NsPerOp())/float64(mapRes.NsPerOp())
	}
	return nil
}

func (r *HostBenchResult) measureTable1(parallel int, scale float64) error {
	var runErr error
	measure := func(width int) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			h := &Harness{Parallel: width}
			for i := 0; i < b.N; i++ {
				if _, err := h.Table1(scale, nil); err != nil {
					runErr = err
					return
				}
			}
		})
	}
	serial := measure(1)
	par := measure(parallel)
	if runErr != nil {
		return runErr
	}
	r.Table1 = Table1HostBench{
		Scale:      scale,
		Parallel:   parallel,
		SerialNs:   serial.NsPerOp(),
		ParallelNs: par.NsPerOp(),
	}
	if par.NsPerOp() > 0 {
		r.Table1.Speedup = float64(serial.NsPerOp()) / float64(par.NsPerOp())
	}
	return nil
}

// mips converts (instructions, ns per run) to guest MIPS.
func mips(insts uint64, nsPerOp int64) float64 {
	if nsPerOp <= 0 {
		return 0
	}
	return float64(insts) * 1e3 / float64(nsPerOp)
}

// WriteJSON serializes the result, indented, to w.
func (r *HostBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Render writes a human-readable summary to w (nil ok).
func (r *HostBenchResult) Render(w io.Writer) {
	if w == nil {
		return
	}
	fmt.Fprintf(w, "host: %s/%s, %d CPUs, %s\n", r.GOOS, r.GOARCH, r.NumCPU, r.GoVersion)
	fmt.Fprintf(w, "vm dispatch (%d guest insts):\n", r.Dispatch.GuestInsts)
	fmt.Fprintf(w, "  map icache    %7.1f ns/inst  %7.1f guest MIPS\n",
		r.Dispatch.MapNsPerInst, r.Dispatch.MapMIPS)
	fmt.Fprintf(w, "  block cache   %7.1f ns/inst  %7.1f guest MIPS  (%.1f%% faster)\n",
		r.Dispatch.BlockNsPerInst, r.Dispatch.BlockMIPS, 100*r.Dispatch.Improvement)
	fmt.Fprintf(w, "table1 (scale %.2f):\n", r.Table1.Scale)
	fmt.Fprintf(w, "  serial        %12d ns\n", r.Table1.SerialNs)
	fmt.Fprintf(w, "  parallel %-4d %12d ns  (%.2fx speedup)\n",
		r.Table1.Parallel, r.Table1.ParallelNs, r.Table1.Speedup)
}
