package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"redfat/internal/mem"
	"redfat/internal/redfat"
	"redfat/internal/relf"
	"redfat/internal/rtlib"
	"redfat/internal/telemetry"
	"redfat/internal/workload"
)

// Host-side performance benchmarks. Unlike every other experiment in this
// package — which measures deterministic guest cycles — these measure
// host wall-clock: how fast the interpreter dispatches and how well the
// experiment harness scales over the worker pool. Guest results are
// identical across all of these configurations; only elapsed time moves.

// DispatchHostBench compares the interpreter's two dispatch strategies on
// an uninstrumented workload: the legacy per-instruction map icache vs the
// decoded basic-block cache.
type DispatchHostBench struct {
	GuestInsts     uint64  `json:"guest_insts"`     // instructions retired per run
	MapNsPerInst   float64 `json:"map_ns_per_inst"` // legacy map icache
	BlockNsPerInst float64 `json:"block_ns_per_inst"`
	MapMIPS        float64 `json:"map_mips"` // guest MIPS (million insts / wall-second)
	BlockMIPS      float64 `json:"block_mips"`
	Improvement    float64 `json:"improvement"` // fractional dispatch-time reduction
}

// MemTLBHostBench compares guest-memory access latency through the
// software TLB against the raw page-map lookup, plus the TLB hit rate
// observed over the dispatch workload.
type MemTLBHostBench struct {
	MapNsPerAccess float64 `json:"map_ns_per_access"` // NoTLB: page-map lookup per access
	TLBNsPerAccess float64 `json:"tlb_ns_per_access"`
	Speedup        float64 `json:"speedup"`  // map / TLB latency ratio
	HitRate        float64 `json:"hit_rate"` // TLB hits / probes over the workload run
}

// BlockChainHostBench isolates the block-chaining layer: the block cache
// with chaining disabled (every block exit walks the per-page tables) vs
// chaining enabled (steady-state exits follow cached successor pointers).
type BlockChainHostBench struct {
	NoChainNsPerInst float64 `json:"nochain_ns_per_inst"`
	ChainNsPerInst   float64 `json:"chain_ns_per_inst"`
	NoChainMIPS      float64 `json:"nochain_mips"`
	ChainMIPS        float64 `json:"chain_mips"`
	Improvement      float64 `json:"improvement"`    // fractional dispatch-time reduction
	ChainHitRate     float64 `json:"chain_hit_rate"` // chained / all block exits
}

// VMJITHostBench isolates the superblock tier: the chained block
// interpreter with the tier disabled vs hot traces compiled into fused
// Go closures, plus the tier's activity over one instrumented run.
type VMJITHostBench struct {
	NoJITNsPerInst float64 `json:"nojit_ns_per_inst"`
	JITNsPerInst   float64 `json:"jit_ns_per_inst"`
	NoJITMIPS      float64 `json:"nojit_mips"`
	JITMIPS        float64 `json:"jit_mips"`
	Improvement    float64 `json:"improvement"`    // fractional dispatch-time reduction
	Compiled       uint64  `json:"compiled"`       // traces compiled over the run
	Deopts         uint64  `json:"deopts"`         // side/fault exits back to the interpreter
	CompiledShare  float64 `json:"compiled_share"` // insts retired in compiled code / all
}

// LibcSpanTwinBench is one loop/intrinsic twin pair under full hardening:
// the same byte traffic checked per access (guest loop) vs once per libc
// call (span-checked intrinsic). Guest cycles are deterministic — the
// cycle ratio is the modelled libredfat win; the wall-clock columns show
// the host-side effect of retiring fewer guest instructions.
type LibcSpanTwinBench struct {
	Name        string  `json:"name"`
	LoopCycles  uint64  `json:"loop_cycles"`
	IntrCycles  uint64  `json:"intr_cycles"`
	CycleRatio  float64 `json:"cycle_ratio"` // loop / intrinsic guest cycles
	LoopNs      int64   `json:"loop_ns"`
	IntrNs      int64   `json:"intr_ns"`
	WallSpeedup float64 `json:"wall_speedup"`
	SpanChecks  uint64  `json:"span_checks"` // vm.libc.span.check.count, intrinsic run
}

// IndirectHostBench records what the indirect-flow recovery buys on the
// switch-dense interpreter workload: recovered-edge claims, the
// dominated-check eliminations those edges unlock (recovery-on minus
// recovery-off under -elimdom), and the deterministic guest-cycle win.
type IndirectHostBench struct {
	Benchmark    string  `json:"benchmark"`
	Resolved     int     `json:"resolved"`              // recovered indirect-flow claims
	ElimNoInd    int     `json:"elim_dominated_noind"`  // dominated checks removed, recovery off
	ElimInd      int     `json:"elim_dominated_ind"`    // dominated checks removed, recovery on
	UnlockedElim int     `json:"unlocked_eliminations"` // ElimInd - ElimNoInd
	NoIndCycles  uint64  `json:"noind_cycles"`
	IndCycles    uint64  `json:"ind_cycles"`
	CycleRatio   float64 `json:"cycle_ratio"` // noind / ind guest cycles
}

// Table1HostBench compares serial and parallel wall-clock for the Table 1
// pipeline at a reduced scale.
type Table1HostBench struct {
	Scale      float64 `json:"scale"`
	Parallel   int     `json:"parallel"`
	SerialNs   int64   `json:"serial_ns"`
	ParallelNs int64   `json:"parallel_ns"`
	Speedup    float64 `json:"speedup"`
}

// HostBenchResult is the machine-readable output of RunHostBench
// (exported by rfbench -hostbench to results/BENCH_host.json).
type HostBenchResult struct {
	GOOS       string              `json:"goos"`
	GOARCH     string              `json:"goarch"`
	GoVersion  string              `json:"go_version"`
	NumCPU     int                 `json:"num_cpu"`
	Dispatch   DispatchHostBench   `json:"vm_dispatch"`
	MemTLB     MemTLBHostBench     `json:"mem_tlb"`
	BlockChain BlockChainHostBench `json:"block_chain"`
	VMJIT      VMJITHostBench      `json:"vm_jit"`
	LibcSpan   []LibcSpanTwinBench `json:"libc_span"`
	Indirect   IndirectHostBench   `json:"indirect"`
	Table1     Table1HostBench     `json:"table1_parallel"`
}

// RunHostBench measures both host-side benchmarks: VM dispatch (map vs
// block cache) and Table 1 harness scaling (serial vs parallel pool).
func RunHostBench(parallel int, scale float64) (*HostBenchResult, error) {
	res := &HostBenchResult{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
	}
	bin, input, err := dispatchWorkload()
	if err != nil {
		return nil, err
	}
	if err := res.measureDispatch(bin, input); err != nil {
		return nil, err
	}
	if err := res.measureBlockChain(bin, input); err != nil {
		return nil, err
	}
	if err := res.measureMemTLB(bin, input); err != nil {
		return nil, err
	}
	if err := res.measureVMJIT(bin, input); err != nil {
		return nil, err
	}
	if err := res.measureLibcSpan(); err != nil {
		return nil, err
	}
	if err := res.measureIndirect(); err != nil {
		return nil, err
	}
	if err := res.measureTable1(parallel, scale); err != nil {
		return nil, err
	}
	return res, nil
}

// dispatchWorkload builds the shared workload binary (bzip2 at a reduced
// reference scale) used by the dispatch, chaining and TLB measurements.
func dispatchWorkload() (*relf.Binary, []uint64, error) {
	bm := workload.ByName("bzip2")
	cp := *bm
	cp.RefScale = 20000
	bin, err := cp.Build()
	if err != nil {
		return nil, nil, err
	}
	return bin, cp.RefInput(), nil
}

// measureConfig times repeated runs of the workload under one knob setting.
func measureConfig(bin *relf.Binary, input []uint64, cfg rtlib.RunConfig, runErr *error) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := cfg
			c.Input = input
			if _, err := rtlib.RunBaseline(bin, c); err != nil {
				*runErr = err
				return
			}
		}
	})
}

func (r *HostBenchResult) measureDispatch(bin *relf.Binary, input []uint64) error {
	probe, err := rtlib.RunBaseline(bin, rtlib.RunConfig{Input: input})
	if err != nil {
		return err
	}
	insts := probe.Insts

	// NoJIT on both sides: this section compares dispatch strategies
	// (map icache vs block cache), not the superblock tier.
	var runErr error
	mapRes := measureConfig(bin, input, rtlib.RunConfig{NoBlockCache: true, NoJIT: true}, &runErr)
	blockRes := measureConfig(bin, input, rtlib.RunConfig{NoJIT: true}, &runErr)
	if runErr != nil {
		return runErr
	}

	r.Dispatch = DispatchHostBench{
		GuestInsts:     insts,
		MapNsPerInst:   float64(mapRes.NsPerOp()) / float64(insts),
		BlockNsPerInst: float64(blockRes.NsPerOp()) / float64(insts),
		MapMIPS:        mips(insts, mapRes.NsPerOp()),
		BlockMIPS:      mips(insts, blockRes.NsPerOp()),
	}
	if mapRes.NsPerOp() > 0 {
		r.Dispatch.Improvement = 1 - float64(blockRes.NsPerOp())/float64(mapRes.NsPerOp())
	}
	return nil
}

// measureBlockChain isolates chaining: block cache with vs without the
// successor links, plus the chain hit rate over one instrumented run.
func (r *HostBenchResult) measureBlockChain(bin *relf.Binary, input []uint64) error {
	// NoJIT on both sides (and on the hit-rate probe): this section
	// isolates the chaining layer; with traces enabled most block exits
	// never reach the chain lookup at all.
	var runErr error
	noChain := measureConfig(bin, input, rtlib.RunConfig{NoChain: true, NoJIT: true}, &runErr)
	chain := measureConfig(bin, input, rtlib.RunConfig{NoJIT: true}, &runErr)
	if runErr != nil {
		return runErr
	}

	reg := telemetry.New()
	if _, err := rtlib.RunBaseline(bin, rtlib.RunConfig{Input: input, Metrics: reg, NoJIT: true}); err != nil {
		return err
	}
	snap := reg.Snapshot()
	hits := snap.Counters["vm.icache.chain.hits"]
	misses := snap.Counters["vm.icache.chain.misses"]

	insts := r.Dispatch.GuestInsts
	r.BlockChain = BlockChainHostBench{
		NoChainNsPerInst: float64(noChain.NsPerOp()) / float64(insts),
		ChainNsPerInst:   float64(chain.NsPerOp()) / float64(insts),
		NoChainMIPS:      mips(insts, noChain.NsPerOp()),
		ChainMIPS:        mips(insts, chain.NsPerOp()),
	}
	if noChain.NsPerOp() > 0 {
		r.BlockChain.Improvement = 1 - float64(chain.NsPerOp())/float64(noChain.NsPerOp())
	}
	if total := hits + misses; total > 0 {
		r.BlockChain.ChainHitRate = float64(hits) / float64(total)
	}
	return nil
}

// measureMemTLB times raw guest loads over a multi-page working set with
// the TLB on vs off, and reports the TLB hit rate of a full workload run.
func (r *HostBenchResult) measureMemTLB(bin *relf.Binary, input []uint64) error {
	const (
		base     = uint64(0x10000)
		pages    = 16
		accesses = 4096
		stride   = 64
	)
	nsPerAccess := func(noTLB bool) (float64, error) {
		m := mem.New()
		m.NoTLB = noTLB
		m.Map(base, pages*mem.PageSize, mem.PermRW)
		var loadErr error
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				addr := base
				for j := 0; j < accesses; j++ {
					if _, err := m.Load(addr, 8); err != nil {
						loadErr = err
						return
					}
					addr += stride
					if addr >= base+pages*mem.PageSize {
						addr = base
					}
				}
			}
		})
		return float64(res.NsPerOp()) / accesses, loadErr
	}
	mapNs, err := nsPerAccess(true)
	if err != nil {
		return err
	}
	tlbNs, err := nsPerAccess(false)
	if err != nil {
		return err
	}

	probe, err := rtlib.RunBaseline(bin, rtlib.RunConfig{Input: input})
	if err != nil {
		return err
	}

	r.MemTLB = MemTLBHostBench{
		MapNsPerAccess: mapNs,
		TLBNsPerAccess: tlbNs,
		HitRate:        probe.Mem.TLB().HitRate(),
	}
	if tlbNs > 0 {
		r.MemTLB.Speedup = mapNs / tlbNs
	}
	return nil
}

// measureVMJIT isolates the superblock tier: the full fast path (block
// cache + chaining + traces) against the same path with the tier
// disabled, plus compile/deopt activity from one instrumented run.
func (r *HostBenchResult) measureVMJIT(bin *relf.Binary, input []uint64) error {
	var runErr error
	nojit := measureConfig(bin, input, rtlib.RunConfig{NoJIT: true}, &runErr)
	jit := measureConfig(bin, input, rtlib.RunConfig{}, &runErr)
	if runErr != nil {
		return runErr
	}

	reg := telemetry.New()
	if _, err := rtlib.RunBaseline(bin, rtlib.RunConfig{Input: input, Metrics: reg}); err != nil {
		return err
	}
	snap := reg.Snapshot()

	insts := r.Dispatch.GuestInsts
	r.VMJIT = VMJITHostBench{
		NoJITNsPerInst: float64(nojit.NsPerOp()) / float64(insts),
		JITNsPerInst:   float64(jit.NsPerOp()) / float64(insts),
		NoJITMIPS:      mips(insts, nojit.NsPerOp()),
		JITMIPS:        mips(insts, jit.NsPerOp()),
		Compiled:       snap.Counters["vm.jit.compile.count"],
		Deopts:         snap.Counters["vm.jit.deopt.count"],
	}
	if nojit.NsPerOp() > 0 {
		r.VMJIT.Improvement = 1 - float64(jit.NsPerOp())/float64(nojit.NsPerOp())
	}
	if insts > 0 {
		r.VMJIT.CompiledShare = float64(snap.Counters["vm.jit.exec.insts"]) / float64(insts)
	}
	return nil
}

// measureLibcSpan runs the libc twin pairs under full hardening and
// records cycle ratios (deterministic) and wall-clock (informational).
// The exit checksums of each pair are asserted equal — the twins do the
// same work, or the comparison is meaningless.
func (r *HostBenchResult) measureLibcSpan() error {
	hardened := func(bm *workload.Benchmark) (*relf.Binary, []uint64, error) {
		bin, err := bm.Build()
		if err != nil {
			return nil, nil, err
		}
		hard, _, err := redfat.Harden(bin, redfat.Defaults())
		if err != nil {
			return nil, nil, err
		}
		return hard, bm.RefInput(), nil
	}
	timeHardened := func(bin *relf.Binary, input []uint64, runErr *error) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := rtlib.RunHardened(bin, rtlib.RunConfig{Input: input}); err != nil {
					*runErr = err
					return
				}
			}
		})
	}
	for _, tw := range workload.LibcTwins() {
		loopBin, loopIn, err := hardened(tw.Loop)
		if err != nil {
			return err
		}
		intrBin, intrIn, err := hardened(tw.Intr)
		if err != nil {
			return err
		}
		lv, _, err := rtlib.RunHardened(loopBin, rtlib.RunConfig{Input: loopIn})
		if err != nil {
			return err
		}
		reg := telemetry.New()
		iv, _, err := rtlib.RunHardened(intrBin, rtlib.RunConfig{Input: intrIn, Metrics: reg})
		if err != nil {
			return err
		}
		if lv.ExitCode != iv.ExitCode {
			return fmt.Errorf("libc_span %s: twin checksums differ: loop %d, intrinsic %d",
				tw.Name, lv.ExitCode, iv.ExitCode)
		}
		if len(lv.Errors) != 0 || len(iv.Errors) != 0 {
			return fmt.Errorf("libc_span %s: twin run reported memory errors", tw.Name)
		}
		var runErr error
		loopRes := timeHardened(loopBin, loopIn, &runErr)
		intrRes := timeHardened(intrBin, intrIn, &runErr)
		if runErr != nil {
			return runErr
		}
		row := LibcSpanTwinBench{
			Name:       tw.Name,
			LoopCycles: lv.Cycles,
			IntrCycles: iv.Cycles,
			LoopNs:     loopRes.NsPerOp(),
			IntrNs:     intrRes.NsPerOp(),
			SpanChecks: reg.Snapshot().Counters["vm.libc.span.check.count"],
		}
		if iv.Cycles > 0 {
			row.CycleRatio = float64(lv.Cycles) / float64(iv.Cycles)
		}
		if intrRes.NsPerOp() > 0 {
			row.WallSpeedup = float64(loopRes.NsPerOp()) / float64(intrRes.NsPerOp())
		}
		r.LibcSpan = append(r.LibcSpan, row)
	}
	return nil
}

// measureIndirect hardens the switch-dense interpreter with and without
// the indirect-flow recovery (dominator elimination on in both) and
// records the recovered claims, unlocked eliminations, and guest-cycle
// ratio. Both runs' exit checksums are asserted equal — the recovery
// must never change guest results.
func (r *HostBenchResult) measureIndirect() error {
	bm := workload.ByName("interp")
	if bm == nil {
		return fmt.Errorf("hostbench: switch-dense benchmark %q missing", "interp")
	}
	cp := *bm
	cp.RefScale = 6000
	bin, err := cp.Build()
	if err != nil {
		return err
	}
	type side struct {
		cycles uint64
		exit   uint64
		elim   int
		res    int
	}
	measure := func(noInd bool) (side, error) {
		opt := redfat.Defaults()
		opt.NoIndirect = noInd
		hard, rep, err := redfat.Harden(bin, opt)
		if err != nil {
			return side{}, err
		}
		v, _, err := rtlib.RunHardened(hard,
			rtlib.RunConfig{Input: cp.RefInput(), NoIndirect: noInd})
		if err != nil {
			return side{}, err
		}
		return side{cycles: v.Cycles, exit: v.ExitCode,
			elim: rep.ElimDominated, res: rep.IndirectResolved}, nil
	}
	noind, err := measure(true)
	if err != nil {
		return err
	}
	ind, err := measure(false)
	if err != nil {
		return err
	}
	if noind.exit != ind.exit {
		return fmt.Errorf("hostbench: indirect recovery changed the guest checksum: %#x vs %#x",
			noind.exit, ind.exit)
	}
	r.Indirect = IndirectHostBench{
		Benchmark:    cp.Name,
		Resolved:     ind.res,
		ElimNoInd:    noind.elim,
		ElimInd:      ind.elim,
		UnlockedElim: ind.elim - noind.elim,
		NoIndCycles:  noind.cycles,
		IndCycles:    ind.cycles,
	}
	if ind.cycles > 0 {
		r.Indirect.CycleRatio = float64(noind.cycles) / float64(ind.cycles)
	}
	return nil
}

func (r *HostBenchResult) measureTable1(parallel int, scale float64) error {
	var runErr error
	measure := func(width int) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			h := &Harness{Parallel: width}
			for i := 0; i < b.N; i++ {
				if _, err := h.Table1(scale, nil); err != nil {
					runErr = err
					return
				}
			}
		})
	}
	serial := measure(1)
	par := measure(parallel)
	if runErr != nil {
		return runErr
	}
	r.Table1 = Table1HostBench{
		Scale:      scale,
		Parallel:   parallel,
		SerialNs:   serial.NsPerOp(),
		ParallelNs: par.NsPerOp(),
	}
	if par.NsPerOp() > 0 {
		r.Table1.Speedup = float64(serial.NsPerOp()) / float64(par.NsPerOp())
	}
	return nil
}

// mips converts (instructions, ns per run) to guest MIPS.
func mips(insts uint64, nsPerOp int64) float64 {
	if nsPerOp <= 0 {
		return 0
	}
	return float64(insts) * 1e3 / float64(nsPerOp)
}

// WriteJSON serializes the result, indented, to w.
func (r *HostBenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Render writes a human-readable summary to w (nil ok).
func (r *HostBenchResult) Render(w io.Writer) {
	if w == nil {
		return
	}
	fmt.Fprintf(w, "host: %s/%s, %d CPUs, %s\n", r.GOOS, r.GOARCH, r.NumCPU, r.GoVersion)
	fmt.Fprintf(w, "vm dispatch (%d guest insts):\n", r.Dispatch.GuestInsts)
	fmt.Fprintf(w, "  map icache    %7.1f ns/inst  %7.1f guest MIPS\n",
		r.Dispatch.MapNsPerInst, r.Dispatch.MapMIPS)
	fmt.Fprintf(w, "  block cache   %7.1f ns/inst  %7.1f guest MIPS  (%.1f%% faster)\n",
		r.Dispatch.BlockNsPerInst, r.Dispatch.BlockMIPS, 100*r.Dispatch.Improvement)
	fmt.Fprintf(w, "mem tlb (%.1f%% hit rate on workload):\n", 100*r.MemTLB.HitRate)
	fmt.Fprintf(w, "  page map      %7.2f ns/access\n", r.MemTLB.MapNsPerAccess)
	fmt.Fprintf(w, "  tlb           %7.2f ns/access  (%.2fx faster)\n",
		r.MemTLB.TLBNsPerAccess, r.MemTLB.Speedup)
	fmt.Fprintf(w, "block chaining (%.1f%% chain hit rate):\n", 100*r.BlockChain.ChainHitRate)
	fmt.Fprintf(w, "  no chain      %7.1f ns/inst  %7.1f guest MIPS\n",
		r.BlockChain.NoChainNsPerInst, r.BlockChain.NoChainMIPS)
	fmt.Fprintf(w, "  chained       %7.1f ns/inst  %7.1f guest MIPS  (%.1f%% faster)\n",
		r.BlockChain.ChainNsPerInst, r.BlockChain.ChainMIPS, 100*r.BlockChain.Improvement)
	fmt.Fprintf(w, "superblock tier (%d traces, %.1f%% of insts compiled, %d deopts):\n",
		r.VMJIT.Compiled, 100*r.VMJIT.CompiledShare, r.VMJIT.Deopts)
	fmt.Fprintf(w, "  interpreter   %7.1f ns/inst  %7.1f guest MIPS\n",
		r.VMJIT.NoJITNsPerInst, r.VMJIT.NoJITMIPS)
	fmt.Fprintf(w, "  compiled      %7.1f ns/inst  %7.1f guest MIPS  (%.1f%% faster)\n",
		r.VMJIT.JITNsPerInst, r.VMJIT.JITMIPS, 100*r.VMJIT.Improvement)
	for _, tw := range r.LibcSpan {
		fmt.Fprintf(w, "libc span twin %s (%d span checks):\n", tw.Name, tw.SpanChecks)
		fmt.Fprintf(w, "  checked loop  %12d cycles %10d ns\n", tw.LoopCycles, tw.LoopNs)
		fmt.Fprintf(w, "  intrinsic     %12d cycles %10d ns  (%.1fx cycles, %.1fx wall)\n",
			tw.IntrCycles, tw.IntrNs, tw.CycleRatio, tw.WallSpeedup)
	}
	fmt.Fprintf(w, "indirect recovery (%s, %d resolved claims):\n",
		r.Indirect.Benchmark, r.Indirect.Resolved)
	fmt.Fprintf(w, "  recovery off  %12d cycles  %6d dominated checks eliminated\n",
		r.Indirect.NoIndCycles, r.Indirect.ElimNoInd)
	fmt.Fprintf(w, "  recovery on   %12d cycles  %6d dominated checks eliminated  (+%d unlocked, %.2fx cycles)\n",
		r.Indirect.IndCycles, r.Indirect.ElimInd, r.Indirect.UnlockedElim, r.Indirect.CycleRatio)
	fmt.Fprintf(w, "table1 (scale %.2f):\n", r.Table1.Scale)
	fmt.Fprintf(w, "  serial        %12d ns\n", r.Table1.SerialNs)
	fmt.Fprintf(w, "  parallel %-4d %12d ns  (%.2fx speedup)\n",
		r.Table1.Parallel, r.Table1.ParallelNs, r.Table1.Speedup)
}
