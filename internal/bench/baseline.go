package bench

import (
	"fmt"
	"io"
	"math"
)

// DefaultRegressThreshold is the noise band for trajectory comparisons:
// deltas within ±10% of the baseline are reported but not flagged. Guest
// cycles are deterministic, so at equal scale a genuine re-run diffs to
// zero; the band absorbs cross-revision drift from intentional changes.
const DefaultRegressThreshold = 0.10

// Delta is one tracked metric's movement between a baseline Results
// document and the current run.
type Delta struct {
	Section string  // which experiment the metric belongs to
	Metric  string  // metric name within the section
	Base    float64 // baseline value
	Curr    float64 // current value
	Rel     float64 // relative change (curr-base)/base
	// LowerIsBetter orients the regression test: overheads regress
	// upward, coverage and detection counts regress downward.
	LowerIsBetter bool
	Regress       bool // moved beyond the threshold in the bad direction
}

// Trajectory is the section-by-section comparison of two bench Results.
type Trajectory struct {
	Threshold float64
	Deltas    []Delta
	// Notes records comparability caveats (scale mismatch, sections or
	// rows present on only one side).
	Notes []string
}

// Regressions returns the deltas flagged beyond the threshold.
func (t *Trajectory) Regressions() []Delta {
	var out []Delta
	for _, d := range t.Deltas {
		if d.Regress {
			out = append(out, d)
		}
	}
	return out
}

// Compare diffs the current run against a baseline, metric by metric.
// Only sections present on both sides are compared; one-sided sections
// become notes. threshold ≤ 0 selects DefaultRegressThreshold.
func Compare(curr, base *Results, threshold float64) *Trajectory {
	if threshold <= 0 {
		threshold = DefaultRegressThreshold
	}
	t := &Trajectory{Threshold: threshold}
	if curr.Scale != base.Scale {
		t.note("scale differs (baseline %.3g, current %.3g): cycle-derived deltas are not comparable",
			base.Scale, curr.Scale)
	}
	t.compareTable1(curr, base)
	t.compareFalsePositives(curr, base)
	t.compareTable2("table2", curr.Table2, base.Table2)
	t.compareTable2("table2_extended", curr.Table2Extended, base.Table2Extended)
	t.compareFigure8(curr, base)
	return t
}

func (t *Trajectory) note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// add records one metric pair and applies the threshold test.
func (t *Trajectory) add(section, metric string, base, curr float64, lowerBetter bool) {
	d := Delta{Section: section, Metric: metric, Base: base, Curr: curr,
		LowerIsBetter: lowerBetter}
	switch {
	case base == curr:
		d.Rel = 0
	case base == 0:
		d.Rel = math.Copysign(1, curr)
	default:
		d.Rel = (curr - base) / base
	}
	bad := d.Rel
	if !lowerBetter {
		bad = -d.Rel
	}
	d.Regress = bad > t.Threshold
	t.Deltas = append(t.Deltas, d)
}

// oneSided notes a section present on only one side; returns true when
// the comparison must be skipped.
func (t *Trajectory) oneSided(section string, inCurr, inBase bool) bool {
	switch {
	case inCurr && !inBase:
		t.note("%s: present in current run only (baseline predates it or did not run it)", section)
	case !inCurr && inBase:
		t.note("%s: present in baseline only (current run did not run it)", section)
	}
	return !(inCurr && inBase)
}

func (t *Trajectory) compareTable1(curr, base *Results) {
	if t.oneSided("table1", curr.Table1Summary != nil, base.Table1Summary != nil) {
		return
	}
	cs, bs := curr.Table1Summary, base.Table1Summary
	t.add("table1_summary", "mean_coverage", bs.MeanCoverage, cs.MeanCoverage, false)
	t.add("table1_summary", "unopt", bs.Unopt, cs.Unopt, true)
	t.add("table1_summary", "elim", bs.Elim, cs.Elim, true)
	t.add("table1_summary", "batch", bs.Batch, cs.Batch, true)
	t.add("table1_summary", "merge", bs.Merge, cs.Merge, true)
	t.add("table1_summary", "nosize", bs.NoSize, cs.NoSize, true)
	t.add("table1_summary", "noreads", bs.NoReads, cs.NoReads, true)
	t.add("table1_summary", "memcheck", bs.Memcheck, cs.Memcheck, true)

	// Per-benchmark: the production configuration (merge column).
	baseRows := map[string]*Table1Row{}
	for _, r := range base.Table1 {
		baseRows[r.Name] = r
	}
	for _, r := range curr.Table1 {
		b, ok := baseRows[r.Name]
		if !ok {
			t.note("table1: %s has no baseline row", r.Name)
			continue
		}
		t.add("table1", r.Name, b.Merge, r.Merge, true)
		delete(baseRows, r.Name)
	}
	// Deterministic iteration: report leftovers via the current side's
	// ordering guarantee — walk base.Table1 slice, not the map.
	for _, r := range base.Table1 {
		if _, left := baseRows[r.Name]; left {
			t.note("table1: baseline row %s absent from current run", r.Name)
		}
	}
}

func (t *Trajectory) compareFalsePositives(curr, base *Results) {
	if t.oneSided("false_positives", curr.FalsePositives != nil, base.FalsePositives != nil) {
		return
	}
	sum := func(rows []FPRow) (n int) {
		for _, r := range rows {
			n += r.Count
		}
		return
	}
	t.add("false_positives", "total_sites", float64(sum(base.FalsePositives)),
		float64(sum(curr.FalsePositives)), true)
}

func (t *Trajectory) compareTable2(section string, curr, base []Table2Row) {
	if t.oneSided(section, curr != nil, base != nil) {
		return
	}
	sum := func(rows []Table2Row) (total, redfat, memcheck int) {
		for _, r := range rows {
			total += r.Total
			redfat += r.RedFat
			memcheck += r.Memcheck
		}
		return
	}
	bt, br, bm := sum(base)
	ct, cr, cm := sum(curr)
	t.add(section, "cases", float64(bt), float64(ct), false)
	t.add(section, "redfat_detected", float64(br), float64(cr), false)
	t.add(section, "memcheck_detected", float64(bm), float64(cm), false)
}

func (t *Trajectory) compareFigure8(curr, base *Results) {
	if t.oneSided("figure8", curr.Figure8 != nil, base.Figure8 != nil) {
		return
	}
	t.add("figure8", "geomean", base.Figure8.GeoMean, curr.Figure8.GeoMean, true)
}

// Render writes the trajectory as a text table, regressions flagged.
func (t *Trajectory) Render(w io.Writer) error {
	ew := &errWriter{w: w}
	ew.printf("%-16s %-18s %12s %12s %9s\n",
		"section", "metric", "baseline", "current", "delta")
	for _, d := range t.Deltas {
		flag := ""
		if d.Regress {
			flag = "  REGRESS"
		}
		ew.printf("%-16s %-18s %12.4g %12.4g %+8.1f%%%s\n",
			d.Section, d.Metric, d.Base, d.Curr, d.Rel*100, flag)
	}
	for _, n := range t.Notes {
		ew.printf("note: %s\n", n)
	}
	if n := len(t.Regressions()); n > 0 {
		ew.printf("%d regression(s) beyond ±%.1f%%\n", n, t.Threshold*100)
	} else {
		ew.printf("no regressions beyond ±%.1f%%\n", t.Threshold*100)
	}
	return ew.err
}

// errWriter accumulates the first write error so rendering stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
