package bench_test

import (
	"strings"
	"testing"

	"redfat/internal/redfat"
	"redfat/internal/rtlib"
	"redfat/internal/vm"
	"redfat/internal/workload"
)

// TestModeMatrixNoFalsePositives sweeps the allocator hardening modes
// over the full benchmark suite: each mode must not introduce any new
// detection beyond what the same hardened binary reports with the mode
// off. The under-allocation self-test deliberately induces detections,
// but every one of them must carry its "self-test under-allocation" tag
// — an untagged new detection under any mode is a false positive.
func TestModeMatrixNoFalsePositives(t *testing.T) {
	if testing.Short() {
		t.Skip("mode x benchmark sweep")
	}
	modes := []struct {
		name string
		cfg  rtlib.RunConfig
		// tagged allows detections carrying the self-test tag.
		tagged bool
	}{
		{name: "quarantine", cfg: rtlib.RunConfig{QuarantineBytes: 1 << 20}},
		{name: "canary", cfg: rtlib.RunConfig{Canary: true}},
		{name: "underalloc", cfg: rtlib.RunConfig{UnderAllocEvery: 8}, tagged: true},
	}
	for _, bm := range workload.All() {
		cp := *bm
		cp.TrainScale, cp.RefScale = 300, 1500
		bin, err := cp.Build()
		if err != nil {
			t.Fatalf("%s: %v", cp.Name, err)
		}
		hard, _, err := redfat.Harden(bin, redfat.Defaults())
		if err != nil {
			t.Fatalf("%s: %v", cp.Name, err)
		}
		base, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{Input: cp.RefInput()})
		if err != nil {
			t.Fatalf("%s: %v", cp.Name, err)
		}
		basePCs := vm.ErrorSites(base.Errors)
		for _, m := range modes {
			cfg := m.cfg
			cfg.Input = cp.RefInput()
			v, _, err := rtlib.RunHardened(hard, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", cp.Name, m.name, err)
			}
			var fresh []vm.MemError
			for _, e := range v.Errors {
				if m.tagged && strings.Contains(e.Note, "self-test under-allocation") {
					continue
				}
				if !basePCs[e.PC] {
					fresh = append(fresh, e)
				}
			}
			if len(fresh) != 0 {
				t.Errorf("%s/%s: %d mode-induced false positive(s), first: %v",
					cp.Name, m.name, len(fresh), fresh[0].Error())
			}
			// Quarantine and canary are pure allocator hardening: the
			// guest's computation must be unchanged.
			if m.name != "underalloc" && v.ExitCode != base.ExitCode {
				t.Errorf("%s/%s: exit checksum changed: %d -> %d",
					cp.Name, m.name, base.ExitCode, v.ExitCode)
			}
		}
	}
}
