// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§7) on the RF64 substrate.
//
//	Table1         — SPEC CPU2006 slow-downs and coverage (§7.1)
//	DetectedErrors — the calculix/wrf OOB reads (§7.1)
//	FalsePositives — FP counts with the allow-list disabled (§7.1)
//	Table2         — CVE + Juliet non-incremental detection (§7.2)
//	Figure8        — Chrome/Kraken write-protection overhead (§7.3)
//	Ablation       — patch-tactic and batching ablations (ours)
//
// Slow-downs are measured in deterministic VM cycles. Absolute numbers are
// not comparable to the paper's Xeon wall-clock; orderings and rough
// ratios are (see EXPERIMENTS.md).
//
// Every experiment is a method on Harness, which fans independent units
// (a benchmark, a benchmark × configuration cell, a Juliet case) over a
// bounded worker pool and renders the assembled results afterwards, so
// output is byte-identical at any pool width. The package-level functions
// are serial shorthands for the zero-value harness.
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"

	"redfat/internal/juliet"
	"redfat/internal/kraken"
	"redfat/internal/memcheck"
	"redfat/internal/profile"
	"redfat/internal/redfat"
	"redfat/internal/relf"
	"redfat/internal/rtlib"
	"redfat/internal/telemetry"
	"redfat/internal/vm"
	"redfat/internal/workload"
)

// GeoMean returns the geometric mean of xs (ignoring non-positive values).
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Table1Row holds one benchmark's results in paper Table 1 layout.
type Table1Row struct {
	Name     string        `json:"name"`
	Lang     workload.Lang `json:"lang"`
	Coverage float64       `json:"coverage"` // fraction of executed checks that are full-mode

	BaselineCycles uint64 `json:"baseline_cycles"`

	// Slow-down factors vs baseline.
	Unopt    float64 `json:"unopt"`
	Elim     float64 `json:"elim"`
	Batch    float64 `json:"batch"`
	Merge    float64 `json:"merge"`
	Dom      float64 `json:"dom"`
	Ind      float64 `json:"ind"`
	NoSize   float64 `json:"nosize"`
	NoReads  float64 `json:"noreads"`
	Memcheck float64 `json:"memcheck"`

	DetectedErrors int  `json:"detected_errors"` // distinct genuine error sites found during ref
	ChecksumOK     bool `json:"checksum_ok"`
}

// table1Configs returns the instrumentation ladder of Table 1's columns.
// The ladder runs with indirect-flow recovery disabled through +dom so
// the +ind step isolates the recovered-edge benefit (elimination across
// formerly-Unknown boundaries); the later columns inherit recovery on.
func table1Configs(allow profile.AllowList) []redfat.Options {
	base := redfat.Options{LowFat: true, CheckReads: true, SizeCheck: true,
		AllowList: allow, NoIndirect: true}
	unopt := base
	elim := base
	elim.Elim = true
	batch := elim
	batch.Batch = true
	merge := batch
	merge.Merge = true
	dom := merge
	dom.ElimDom = true
	ind := dom
	ind.NoIndirect = false
	nosize := ind
	nosize.SizeCheck = false
	noreads := nosize
	noreads.CheckReads = false
	return []redfat.Options{unopt, elim, batch, merge, dom, ind, nosize, noreads}
}

// t1nConfigs is the number of Table 1 measurement columns: the eight-step
// instrumentation ladder plus the Memcheck comparison.
const t1nConfigs = 9

// t1configNames labels the Table 1 configuration columns in progress output.
var t1configNames = [t1nConfigs]string{
	"unopt", "+elim", "+batch", "+merge", "+dom", "+ind", "-size", "-reads", "memcheck",
}

// t1prep is the per-benchmark state shared by the seven Table 1
// configuration runs: the built binary, its baseline execution, and the
// phase-1 allow-list.
type t1prep struct {
	bm    *workload.Benchmark
	bin   *relf.Binary
	base  *vm.VM
	allow profile.AllowList
}

// table1Prep builds one benchmark, measures its baseline, and derives the
// allow-list from the train workload (paper methodology, Fig. 5 phase 1).
func table1Prep(bm *workload.Benchmark, scale float64, reg *telemetry.Registry) (*t1prep, error) {
	bm = scaled(bm, scale)
	bin, err := bm.Build()
	if err != nil {
		return nil, err
	}
	base, err := rtlib.RunBaseline(bin, rtlib.RunConfig{Input: bm.RefInput(), Metrics: reg})
	if err != nil {
		return nil, fmt.Errorf("%s baseline: %w", bm.Name, err)
	}
	allow, err := allowListFor(bin, bm, reg)
	if err != nil {
		return nil, err
	}
	return &t1prep{bm: bm, bin: bin, base: base, allow: allow}, nil
}

// t1res is one (benchmark × configuration) cell of Table 1.
type t1res struct {
	cycles   uint64
	exitOK   bool
	coverage float64 // config 3 (+merge) only
	errors   int     // config 3 (+merge) only
}

// table1Config measures one configuration column for a prepared
// benchmark: columns 0–7 are the instrumentation ladder, column 8 is the
// Memcheck comparison.
func table1Config(p *t1prep, c int, reg *telemetry.Registry) (t1res, error) {
	if c == t1nConfigs-1 {
		mc, err := memcheck.Run(p.bin, rtlib.RunConfig{Input: p.bm.RefInput(), Metrics: reg})
		if err != nil {
			return t1res{}, fmt.Errorf("%s memcheck: %w", p.bm.Name, err)
		}
		return t1res{cycles: mc.Cycles, exitOK: mc.ExitCode == p.base.ExitCode}, nil
	}
	hard, _, err := redfat.Harden(p.bin, table1Configs(p.allow)[c])
	if err != nil {
		return t1res{}, fmt.Errorf("%s config %d: %w", p.bm.Name, c, err)
	}
	v, rt, err := rtlib.RunHardened(hard, rtlib.RunConfig{Input: p.bm.RefInput(), Metrics: reg})
	if err != nil {
		return t1res{}, fmt.Errorf("%s config %d run: %w", p.bm.Name, c, err)
	}
	r := t1res{cycles: v.Cycles, exitOK: v.ExitCode == p.base.ExitCode}
	if c == 3 { // +merge: full checking with per-site reports intact
		r.coverage = rt.Coverage()
		r.errors = vm.DistinctErrorSites(v.Errors)
	}
	return r, nil
}

// assembleT1Row folds the nine configuration cells into a table row.
func assembleT1Row(p *t1prep, cells []t1res) *Table1Row {
	row := &Table1Row{Name: p.bm.Name, Lang: p.bm.Lang, ChecksumOK: true,
		BaselineCycles: p.base.Cycles}
	for _, c := range cells {
		if !c.exitOK {
			row.ChecksumOK = false
		}
	}
	slow := func(i int) float64 { return float64(cells[i].cycles) / float64(p.base.Cycles) }
	row.Unopt, row.Elim, row.Batch = slow(0), slow(1), slow(2)
	row.Merge, row.Dom, row.Ind = slow(3), slow(4), slow(5)
	row.NoSize, row.NoReads = slow(6), slow(7)
	row.Memcheck = slow(8)
	row.Coverage = cells[3].coverage
	row.DetectedErrors = cells[3].errors
	return row
}

// Table1Bench runs the full Table 1 pipeline for one benchmark at the
// given workload scale (1.0 = full ref size), serially.
func Table1Bench(bm *workload.Benchmark, scale float64) (*Table1Row, error) {
	p, err := table1Prep(bm, scale, nil)
	if err != nil {
		return nil, err
	}
	cells := make([]t1res, t1nConfigs)
	for c := range cells {
		if cells[c], err = table1Config(p, c, nil); err != nil {
			return nil, err
		}
	}
	return assembleT1Row(p, cells), nil
}

func allowListFor(bin *relf.Binary, bm *workload.Benchmark, reg *telemetry.Registry) (profile.AllowList, error) {
	opt := redfat.Defaults()
	opt.Profile = true
	opt.Merge = false
	profBin, _, err := redfat.Harden(bin, opt)
	if err != nil {
		return nil, err
	}
	p := profile.NewProfiler()
	_, rt, err := rtlib.RunHardened(profBin, rtlib.RunConfig{Input: bm.TrainInput(), Metrics: reg})
	if err != nil {
		return nil, fmt.Errorf("%s profiling: %w", bm.Name, err)
	}
	p.Accumulate(rt)
	return p.AllowList(), nil
}

func scaled(bm *workload.Benchmark, scale float64) *workload.Benchmark {
	cp := *bm
	cp.RefScale = uint64(float64(bm.RefScale) * scale)
	if cp.RefScale < 800 {
		cp.RefScale = 800
	}
	cp.TrainScale = cp.RefScale / 8
	return &cp
}

// Table1 runs every benchmark over the harness pool in two fan-out
// stages — per-benchmark preparation (build, baseline, allow-list), then
// the (benchmark × configuration) grid — and renders the table to w
// (nil ok). Rows are assembled in benchmark order regardless of
// completion order, so the output is identical at any pool width. The
// switch-dense marker-built benchmarks ride along after the SPEC set:
// they are where the +ind column separates from +dom (the SPEC binaries
// carry no jump-table declarations, so recovery is a no-op there).
func (h *Harness) Table1(scale float64, w io.Writer) ([]*Table1Row, error) {
	bms := append(workload.All(), workload.SwitchDense()...)
	preps, err := fanOut(h, "table1/prep", len(bms),
		func(i int) string { return bms[i].Name },
		func(i int, reg *telemetry.Registry) (*t1prep, error) {
			return table1Prep(bms[i], scale, reg)
		})
	if err != nil {
		return nil, err
	}
	cells, err := fanOut(h, "table1", len(preps)*t1nConfigs,
		func(i int) string {
			return preps[i/t1nConfigs].bm.Name + "/" + t1configNames[i%t1nConfigs]
		},
		func(i int, reg *telemetry.Registry) (t1res, error) {
			return table1Config(preps[i/t1nConfigs], i%t1nConfigs, reg)
		})
	if err != nil {
		return nil, err
	}
	rows := make([]*Table1Row, len(preps))
	for b := range preps {
		rows[b] = assembleT1Row(preps[b], cells[b*t1nConfigs:(b+1)*t1nConfigs])
	}
	renderTable1(rows, w)
	return rows, nil
}

// Table1 runs every benchmark serially and renders the table to w (nil ok).
func Table1(scale float64, w io.Writer) ([]*Table1Row, error) {
	return (&Harness{}).Table1(scale, w)
}

// renderTable1 writes the per-benchmark rows and the geomean summary row.
func renderTable1(rows []*Table1Row, w io.Writer) {
	if w == nil {
		return
	}
	for _, row := range rows {
		fmt.Fprintf(w, "%-12s %6.1f%% %12d %8.2fx %8.2fx %8.2fx %8.2fx %8.2fx %8.2fx %8.2fx %8.2fx %8.2fx %s\n",
			row.Name, row.Coverage*100, row.BaselineCycles,
			row.Unopt, row.Elim, row.Batch, row.Merge, row.Dom, row.Ind,
			row.NoSize, row.NoReads, row.Memcheck, okFlag(row.ChecksumOK))
	}
	fmt.Fprintf(w, "%-12s %6.1f%% %12s %8.2fx %8.2fx %8.2fx %8.2fx %8.2fx %8.2fx %8.2fx %8.2fx %8.2fx\n",
		"geomean", 100*mean(rows, func(r *Table1Row) float64 { return r.Coverage }),
		"",
		geo(rows, func(r *Table1Row) float64 { return r.Unopt }),
		geo(rows, func(r *Table1Row) float64 { return r.Elim }),
		geo(rows, func(r *Table1Row) float64 { return r.Batch }),
		geo(rows, func(r *Table1Row) float64 { return r.Merge }),
		geo(rows, func(r *Table1Row) float64 { return r.Dom }),
		geo(rows, func(r *Table1Row) float64 { return r.Ind }),
		geo(rows, func(r *Table1Row) float64 { return r.NoSize }),
		geo(rows, func(r *Table1Row) float64 { return r.NoReads }),
		geo(rows, func(r *Table1Row) float64 { return r.Memcheck }))
}

func okFlag(ok bool) string {
	if ok {
		return ""
	}
	return "CHECKSUM-MISMATCH"
}

func geo(rows []*Table1Row, f func(*Table1Row) float64) float64 {
	xs := make([]float64, len(rows))
	for i, r := range rows {
		xs[i] = f(r)
	}
	return GeoMean(xs)
}

func mean(rows []*Table1Row, f func(*Table1Row) float64) float64 {
	s := 0.0
	for _, r := range rows {
		s += f(r)
	}
	if len(rows) == 0 {
		return 0
	}
	return s / float64(len(rows))
}

// FPRow is one benchmark's false-positive count (allow-list disabled).
type FPRow struct {
	Name    string `json:"name"`
	Count   int    `json:"count"` // distinct false-positive sites
	Planted int    `json:"planted"`
}

// FalsePositives reruns benchmarks with full (Redzone)+(LowFat) on all
// memory accesses (no allow-list) and counts distinct false-positive
// sites (§7.1 "False positives"). A site is a false positive if it is
// flagged under full checking but not under redzone-only checking.
// Benchmarks fan out as units over the harness pool.
func (h *Harness) FalsePositives(scale float64, w io.Writer) ([]FPRow, error) {
	bms := workload.All()
	type fpUnit struct {
		row  FPRow
		keep bool
	}
	units, err := fanOut(h, "falsepos", len(bms),
		func(i int) string { return bms[i].Name },
		func(i int, reg *telemetry.Registry) (fpUnit, error) {
			bm := scaled(bms[i], scale)
			bin, err := bm.Build()
			if err != nil {
				return fpUnit{}, err
			}
			fullPCs, err := errorPCs(bin, bm, true, reg)
			if err != nil {
				return fpUnit{}, err
			}
			rzPCs, err := errorPCs(bin, bm, false, reg)
			if err != nil {
				return fpUnit{}, err
			}
			n := 0
			for pc := range fullPCs {
				if !rzPCs[pc] {
					n++
				}
			}
			return fpUnit{
				row:  FPRow{Name: bm.Name, Count: n, Planted: bm.PlantedFPs},
				keep: n > 0 || bm.PlantedFPs > 0,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	var rows []FPRow
	for _, u := range units {
		if u.keep {
			rows = append(rows, u.row)
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	if w != nil {
		for _, r := range rows {
			fmt.Fprintf(w, "%-12s %4d false positives (planted %d)\n", r.Name, r.Count, r.Planted)
		}
	}
	return rows, nil
}

// FalsePositives is the serial form of Harness.FalsePositives.
func FalsePositives(scale float64, w io.Writer) ([]FPRow, error) {
	return (&Harness{}).FalsePositives(scale, w)
}

func errorPCs(bin *relf.Binary, bm *workload.Benchmark, lowfat bool, reg *telemetry.Registry) (map[uint64]bool, error) {
	opt := redfat.Defaults()
	opt.LowFat = lowfat
	opt.Merge = false   // per-operand sites, as the paper counts reports
	opt.ElimDom = false // keep dominated duplicates: reports stay per operand
	hard, _, err := redfat.Harden(bin, opt)
	if err != nil {
		return nil, err
	}
	v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{Input: bm.RefInput(), Metrics: reg})
	if err != nil {
		return nil, err
	}
	return vm.ErrorSites(v.Errors), nil
}

// Table2Row is one line of paper Table 2.
type Table2Row struct {
	ID       string `json:"id"`
	Total    int    `json:"total"`
	Memcheck int    `json:"memcheck"` // detected by Memcheck
	RedFat   int    `json:"redfat"`   // detected by RedFat
}

// detection is one case's verdict under both tools.
type detection struct {
	redfat, memcheck bool
}

// detectAll fans the given cases over the harness pool, running each
// under RedFat and Memcheck.
func (h *Harness) detectAll(what string, cases []*juliet.Case) ([]detection, error) {
	return fanOut(h, what, len(cases),
		func(i int) string { return cases[i].ID },
		func(i int, reg *telemetry.Registry) (detection, error) {
			rf, mc, err := detects(cases[i], reg)
			if err != nil {
				return detection{}, fmt.Errorf("%s: %w", cases[i].ID, err)
			}
			return detection{redfat: rf, memcheck: mc}, nil
		})
}

// Table2 runs the CVE models, the Juliet CWE-122 suite, and the
// OOB-through-libc suite under both tools (§7.2). Every case is one pool
// unit. The libc rows isolate overflows performed inside interposed
// routines: per-access instrumentation never sees those bytes move, so a
// RedFat hit there proves the intrinsic span checks specifically.
func (h *Harness) Table2(w io.Writer) ([]Table2Row, error) {
	cves := juliet.CVECases()
	jcs := juliet.JulietCases()
	lcs := juliet.LibcCases()
	cases := make([]*juliet.Case, 0, len(cves)+len(jcs)+len(lcs))
	cases = append(cases, cves...)
	cases = append(cases, jcs...)
	cases = append(cases, lcs...)
	dets, err := h.detectAll("table2", cases)
	if err != nil {
		return nil, err
	}
	var rows []Table2Row
	for i, c := range cves {
		rows = append(rows, Table2Row{ID: c.ID + " (" + cveProgram(c.ID) + ")",
			Total: 1, Memcheck: b2i(dets[i].memcheck), RedFat: b2i(dets[i].redfat)})
	}
	jr := Table2Row{ID: "CWE-122-Heap-Buffer (Juliet)", Total: juliet.NumJuliet}
	for _, d := range dets[len(cves) : len(cves)+len(jcs)] {
		jr.Memcheck += b2i(d.memcheck)
		jr.RedFat += b2i(d.redfat)
	}
	rows = append(rows, jr)
	for i, c := range lcs {
		d := dets[len(cves)+len(jcs)+i]
		rows = append(rows, Table2Row{ID: c.ID + " (libredfat)",
			Total: 1, Memcheck: b2i(d.memcheck), RedFat: b2i(d.redfat)})
	}
	renderTable2(rows, w)
	return rows, nil
}

// Table2 is the serial form of Harness.Table2.
func Table2(w io.Writer) ([]Table2Row, error) {
	return (&Harness{}).Table2(w)
}

func renderTable2(rows []Table2Row, w io.Writer) {
	if w == nil {
		return
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-34s Memcheck %3d/%d (%3.0f%%)  RedFat %3d/%d (%3.0f%%)\n",
			r.ID, r.Memcheck, r.Total, 100*float64(r.Memcheck)/float64(r.Total),
			r.RedFat, r.Total, 100*float64(r.RedFat)/float64(r.Total))
	}
}

func cveProgram(id string) string {
	switch id {
	case "CVE-2007-3476", "CVE-2016-1903":
		return "php"
	case "CVE-2012-4295":
		return "wireshark"
	case "CVE-2016-2335":
		return "7zip"
	}
	return "?"
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// detects runs one bad case under both tools.
func detects(c *juliet.Case, reg *telemetry.Registry) (redfatHit, memcheckHit bool, err error) {
	bin, err := c.Build()
	if err != nil {
		return false, false, err
	}
	hard, _, err := redfat.Harden(bin, redfat.Defaults())
	if err != nil {
		return false, false, err
	}
	v, _, rerr := rtlib.RunHardened(hard, rtlib.RunConfig{Input: juliet.Trigger(c), Abort: true, Metrics: reg})
	if _, ok := rerr.(*vm.MemError); ok {
		redfatHit = true
	} else if rerr != nil {
		return false, false, rerr
	}
	redfatHit = redfatHit || len(v.Errors) > 0

	mv, merr := memcheck.Run(bin, rtlib.RunConfig{Input: juliet.Trigger(c), Abort: true, Metrics: reg})
	if _, ok := merr.(*vm.MemError); ok {
		memcheckHit = true
	} else if merr != nil {
		return false, false, merr
	}
	memcheckHit = memcheckHit || len(mv.Errors) > 0
	return redfatHit, memcheckHit, nil
}

// Table2Extended runs the CWE-416 (use-after-free) and CWE-415 (double
// free) extension suites — temporal errors beyond the paper's Table 2,
// validating the redzone component's Free-state detection. Every case is
// one pool unit.
func (h *Harness) Table2Extended(w io.Writer) ([]Table2Row, error) {
	suites := []struct {
		id    string
		cases []*juliet.Case
	}{
		{"CWE-416-Use-After-Free", juliet.UAFCases()},
		{"CWE-415-Double-Free", juliet.DoubleFreeCases()},
	}
	var all []*juliet.Case
	for _, s := range suites {
		all = append(all, s.cases...)
	}
	dets, err := h.detectAll("table2ext", all)
	if err != nil {
		return nil, err
	}
	var rows []Table2Row
	off := 0
	for _, s := range suites {
		row := Table2Row{ID: s.id, Total: len(s.cases)}
		for _, d := range dets[off : off+len(s.cases)] {
			row.RedFat += b2i(d.redfat)
			row.Memcheck += b2i(d.memcheck)
		}
		off += len(s.cases)
		rows = append(rows, row)
	}
	renderTable2(rows, w)
	return rows, nil
}

// Table2Extended is the serial form of Harness.Table2Extended.
func Table2Extended(w io.Writer) ([]Table2Row, error) {
	return (&Harness{}).Table2Extended(w)
}

// Fig8Row is one Kraken sub-benchmark's overhead.
type Fig8Row struct {
	Name     string  `json:"name"`
	Slowdown float64 `json:"slowdown"`
}

// Figure8 builds the Chrome-scale binary, hardens all writes with
// (Redzone)+(LowFat), and measures per-Kraken-benchmark overhead (§7.3).
// The build and rewrite run once, serially; the Kraken sub-benchmarks fan
// out as pool units.
func (h *Harness) Figure8(fillerFuncs int, scale uint64, w io.Writer) ([]Fig8Row, float64, error) {
	bin, err := kraken.Build(fillerFuncs)
	if err != nil {
		return nil, 0, err
	}
	opt := redfat.Defaults()
	opt.CheckReads = false // §7.3: write protection
	hard, rep, err := redfat.Harden(bin, opt)
	if err != nil {
		return nil, 0, err
	}
	if w != nil {
		fmt.Fprintf(w, "chrome image: text %d bytes, %s\n",
			len(bin.Text().Data), rep.String())
	}
	rows, err := fanOut(h, "figure8", len(kraken.Benchmarks),
		func(i int) string { return kraken.Benchmarks[i] },
		func(i int, reg *telemetry.Registry) (Fig8Row, error) {
			name := kraken.Benchmarks[i]
			input := []uint64{uint64(i), scale}
			base, err := rtlib.RunBaseline(bin, rtlib.RunConfig{Input: input, Metrics: reg})
			if err != nil {
				return Fig8Row{}, fmt.Errorf("%s baseline: %w", name, err)
			}
			v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{Input: input, Abort: true, Metrics: reg})
			if err != nil {
				return Fig8Row{}, fmt.Errorf("%s hardened: %w", name, err)
			}
			if v.ExitCode != base.ExitCode {
				return Fig8Row{}, fmt.Errorf("%s: checksum mismatch", name)
			}
			return Fig8Row{Name: name,
				Slowdown: float64(v.Cycles) / float64(base.Cycles)}, nil
		})
	if err != nil {
		return nil, 0, err
	}
	xs := make([]float64, len(rows))
	for i, r := range rows {
		xs[i] = r.Slowdown
	}
	gm := GeoMean(xs)
	if w != nil {
		for _, r := range rows {
			fmt.Fprintf(w, "%-22s %6.0f%%\n", r.Name, r.Slowdown*100)
		}
		fmt.Fprintf(w, "%-22s %6.0f%%\n", "Geometric Mean", gm*100)
	}
	return rows, gm, nil
}

// Figure8 is the serial form of Harness.Figure8.
func Figure8(fillerFuncs int, scale uint64, w io.Writer) ([]Fig8Row, float64, error) {
	return (&Harness{}).Figure8(fillerFuncs, scale, w)
}
