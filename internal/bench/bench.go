// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§7) on the RF64 substrate.
//
//	Table1         — SPEC CPU2006 slow-downs and coverage (§7.1)
//	DetectedErrors — the calculix/wrf OOB reads (§7.1)
//	FalsePositives — FP counts with the allow-list disabled (§7.1)
//	Table2         — CVE + Juliet non-incremental detection (§7.2)
//	Figure8        — Chrome/Kraken write-protection overhead (§7.3)
//	Ablation       — patch-tactic and batching ablations (ours)
//
// Slow-downs are measured in deterministic VM cycles. Absolute numbers are
// not comparable to the paper's Xeon wall-clock; orderings and rough
// ratios are (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"io"
	"math"
	"sort"

	"redfat/internal/juliet"
	"redfat/internal/kraken"
	"redfat/internal/memcheck"
	"redfat/internal/profile"
	"redfat/internal/redfat"
	"redfat/internal/relf"
	"redfat/internal/rtlib"
	"redfat/internal/vm"
	"redfat/internal/workload"
)

// GeoMean returns the geometric mean of xs (ignoring non-positive values).
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Table1Row holds one benchmark's results in paper Table 1 layout.
type Table1Row struct {
	Name     string        `json:"name"`
	Lang     workload.Lang `json:"lang"`
	Coverage float64       `json:"coverage"` // fraction of executed checks that are full-mode

	BaselineCycles uint64 `json:"baseline_cycles"`

	// Slow-down factors vs baseline.
	Unopt    float64 `json:"unopt"`
	Elim     float64 `json:"elim"`
	Batch    float64 `json:"batch"`
	Merge    float64 `json:"merge"`
	NoSize   float64 `json:"nosize"`
	NoReads  float64 `json:"noreads"`
	Memcheck float64 `json:"memcheck"`

	DetectedErrors int  `json:"detected_errors"` // distinct genuine error sites found during ref
	ChecksumOK     bool `json:"checksum_ok"`
}

// table1Configs returns the instrumentation ladder of Table 1's columns.
func table1Configs(allow profile.AllowList) []redfat.Options {
	base := redfat.Options{LowFat: true, CheckReads: true, SizeCheck: true,
		AllowList: allow}
	unopt := base
	elim := base
	elim.Elim = true
	batch := elim
	batch.Batch = true
	merge := batch
	merge.Merge = true
	nosize := merge
	nosize.SizeCheck = false
	noreads := nosize
	noreads.CheckReads = false
	return []redfat.Options{unopt, elim, batch, merge, nosize, noreads}
}

// Table1Bench runs the full Table 1 pipeline for one benchmark at the
// given workload scale (1.0 = full ref size).
func Table1Bench(bm *workload.Benchmark, scale float64) (*Table1Row, error) {
	bm = scaled(bm, scale)
	bin, err := bm.Build()
	if err != nil {
		return nil, err
	}
	row := &Table1Row{Name: bm.Name, Lang: bm.Lang, ChecksumOK: true}

	base, err := rtlib.RunBaseline(bin, rtlib.RunConfig{Input: bm.RefInput()})
	if err != nil {
		return nil, fmt.Errorf("%s baseline: %w", bm.Name, err)
	}
	row.BaselineCycles = base.Cycles

	// Phase 1: allow-list from the train workload (paper methodology).
	allow, err := allowListFor(bin, bm)
	if err != nil {
		return nil, err
	}

	slows := make([]float64, 6)
	for i, opt := range table1Configs(allow) {
		hard, _, err := redfat.Harden(bin, opt)
		if err != nil {
			return nil, fmt.Errorf("%s config %d: %w", bm.Name, i, err)
		}
		v, rt, err := rtlib.RunHardened(hard, rtlib.RunConfig{Input: bm.RefInput()})
		if err != nil {
			return nil, fmt.Errorf("%s config %d run: %w", bm.Name, i, err)
		}
		if v.ExitCode != base.ExitCode {
			row.ChecksumOK = false
		}
		slows[i] = float64(v.Cycles) / float64(base.Cycles)
		if i == 3 { // +merge: the fully-optimized full-check configuration
			row.Coverage = rt.Coverage()
			row.DetectedErrors = vm.DistinctErrorSites(v.Errors)
		}
	}
	row.Unopt, row.Elim, row.Batch = slows[0], slows[1], slows[2]
	row.Merge, row.NoSize, row.NoReads = slows[3], slows[4], slows[5]

	mc, err := memcheck.Run(bin, rtlib.RunConfig{Input: bm.RefInput()})
	if err != nil {
		return nil, fmt.Errorf("%s memcheck: %w", bm.Name, err)
	}
	if mc.ExitCode != base.ExitCode {
		row.ChecksumOK = false
	}
	row.Memcheck = float64(mc.Cycles) / float64(base.Cycles)
	return row, nil
}

func allowListFor(bin *relf.Binary, bm *workload.Benchmark) (profile.AllowList, error) {
	opt := redfat.Defaults()
	opt.Profile = true
	opt.Merge = false
	profBin, _, err := redfat.Harden(bin, opt)
	if err != nil {
		return nil, err
	}
	p := profile.NewProfiler()
	_, rt, err := rtlib.RunHardened(profBin, rtlib.RunConfig{Input: bm.TrainInput()})
	if err != nil {
		return nil, fmt.Errorf("%s profiling: %w", bm.Name, err)
	}
	p.Accumulate(rt)
	return p.AllowList(), nil
}

func scaled(bm *workload.Benchmark, scale float64) *workload.Benchmark {
	cp := *bm
	cp.RefScale = uint64(float64(bm.RefScale) * scale)
	if cp.RefScale < 800 {
		cp.RefScale = 800
	}
	cp.TrainScale = cp.RefScale / 8
	return &cp
}

// Table1 runs every benchmark and renders the table to w (nil ok).
func Table1(scale float64, w io.Writer) ([]*Table1Row, error) {
	var rows []*Table1Row
	for _, bm := range workload.All() {
		row, err := Table1Bench(bm, scale)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if w != nil {
			fmt.Fprintf(w, "%-12s %6.1f%% %12d %8.2fx %8.2fx %8.2fx %8.2fx %8.2fx %8.2fx %8.2fx %s\n",
				row.Name, row.Coverage*100, row.BaselineCycles,
				row.Unopt, row.Elim, row.Batch, row.Merge,
				row.NoSize, row.NoReads, row.Memcheck, okFlag(row.ChecksumOK))
		}
	}
	if w != nil {
		fmt.Fprintf(w, "%-12s %6.1f%% %12s %8.2fx %8.2fx %8.2fx %8.2fx %8.2fx %8.2fx %8.2fx\n",
			"geomean", 100*mean(rows, func(r *Table1Row) float64 { return r.Coverage }),
			"",
			geo(rows, func(r *Table1Row) float64 { return r.Unopt }),
			geo(rows, func(r *Table1Row) float64 { return r.Elim }),
			geo(rows, func(r *Table1Row) float64 { return r.Batch }),
			geo(rows, func(r *Table1Row) float64 { return r.Merge }),
			geo(rows, func(r *Table1Row) float64 { return r.NoSize }),
			geo(rows, func(r *Table1Row) float64 { return r.NoReads }),
			geo(rows, func(r *Table1Row) float64 { return r.Memcheck }))
	}
	return rows, nil
}

func okFlag(ok bool) string {
	if ok {
		return ""
	}
	return "CHECKSUM-MISMATCH"
}

func geo(rows []*Table1Row, f func(*Table1Row) float64) float64 {
	xs := make([]float64, len(rows))
	for i, r := range rows {
		xs[i] = f(r)
	}
	return GeoMean(xs)
}

func mean(rows []*Table1Row, f func(*Table1Row) float64) float64 {
	s := 0.0
	for _, r := range rows {
		s += f(r)
	}
	if len(rows) == 0 {
		return 0
	}
	return s / float64(len(rows))
}

// FPRow is one benchmark's false-positive count (allow-list disabled).
type FPRow struct {
	Name    string `json:"name"`
	Count   int    `json:"count"` // distinct false-positive sites
	Planted int    `json:"planted"`
}

// FalsePositives reruns benchmarks with full (Redzone)+(LowFat) on all
// memory accesses (no allow-list) and counts distinct false-positive
// sites (§7.1 "False positives"). A site is a false positive if it is
// flagged under full checking but not under redzone-only checking.
func FalsePositives(scale float64, w io.Writer) ([]FPRow, error) {
	var rows []FPRow
	for _, bm := range workload.All() {
		bm := scaled(bm, scale)
		bin, err := bm.Build()
		if err != nil {
			return nil, err
		}
		fullPCs, err := errorPCs(bin, bm, true)
		if err != nil {
			return nil, err
		}
		rzPCs, err := errorPCs(bin, bm, false)
		if err != nil {
			return nil, err
		}
		n := 0
		for pc := range fullPCs {
			if !rzPCs[pc] {
				n++
			}
		}
		if n > 0 || bm.PlantedFPs > 0 {
			rows = append(rows, FPRow{Name: bm.Name, Count: n, Planted: bm.PlantedFPs})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	if w != nil {
		for _, r := range rows {
			fmt.Fprintf(w, "%-12s %4d false positives (planted %d)\n", r.Name, r.Count, r.Planted)
		}
	}
	return rows, nil
}

func errorPCs(bin *relf.Binary, bm *workload.Benchmark, lowfat bool) (map[uint64]bool, error) {
	opt := redfat.Defaults()
	opt.LowFat = lowfat
	opt.Merge = false // per-operand sites, as the paper counts reports
	hard, _, err := redfat.Harden(bin, opt)
	if err != nil {
		return nil, err
	}
	v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{Input: bm.RefInput()})
	if err != nil {
		return nil, err
	}
	return vm.ErrorSites(v.Errors), nil
}

// Table2Row is one line of paper Table 2.
type Table2Row struct {
	ID       string `json:"id"`
	Total    int    `json:"total"`
	Memcheck int    `json:"memcheck"` // detected by Memcheck
	RedFat   int    `json:"redfat"`   // detected by RedFat
}

// Table2 runs the CVE models and the Juliet CWE-122 suite under both
// tools (§7.2).
func Table2(w io.Writer) ([]Table2Row, error) {
	var rows []Table2Row
	for _, c := range juliet.CVECases() {
		rf, mc, err := detects(c)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.ID, err)
		}
		rows = append(rows, Table2Row{ID: c.ID + " (" + cveProgram(c.ID) + ")",
			Total: 1, Memcheck: b2i(mc), RedFat: b2i(rf)})
	}
	jr := Table2Row{ID: "CWE-122-Heap-Buffer (Juliet)", Total: juliet.NumJuliet}
	for _, c := range juliet.JulietCases() {
		rf, mc, err := detects(c)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.ID, err)
		}
		jr.Memcheck += b2i(mc)
		jr.RedFat += b2i(rf)
	}
	rows = append(rows, jr)
	if w != nil {
		for _, r := range rows {
			fmt.Fprintf(w, "%-34s Memcheck %3d/%d (%3.0f%%)  RedFat %3d/%d (%3.0f%%)\n",
				r.ID, r.Memcheck, r.Total, 100*float64(r.Memcheck)/float64(r.Total),
				r.RedFat, r.Total, 100*float64(r.RedFat)/float64(r.Total))
		}
	}
	return rows, nil
}

func cveProgram(id string) string {
	switch id {
	case "CVE-2007-3476", "CVE-2016-1903":
		return "php"
	case "CVE-2012-4295":
		return "wireshark"
	case "CVE-2016-2335":
		return "7zip"
	}
	return "?"
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// detects runs one bad case under both tools.
func detects(c *juliet.Case) (redfatHit, memcheckHit bool, err error) {
	bin, err := c.Build()
	if err != nil {
		return false, false, err
	}
	hard, _, err := redfat.Harden(bin, redfat.Defaults())
	if err != nil {
		return false, false, err
	}
	v, _, rerr := rtlib.RunHardened(hard, rtlib.RunConfig{Input: juliet.Trigger(c), Abort: true})
	if _, ok := rerr.(*vm.MemError); ok {
		redfatHit = true
	} else if rerr != nil {
		return false, false, rerr
	}
	redfatHit = redfatHit || len(v.Errors) > 0

	mv, merr := memcheck.Run(bin, rtlib.RunConfig{Input: juliet.Trigger(c), Abort: true})
	if _, ok := merr.(*vm.MemError); ok {
		memcheckHit = true
	} else if merr != nil {
		return false, false, merr
	}
	memcheckHit = memcheckHit || len(mv.Errors) > 0
	return redfatHit, memcheckHit, nil
}

// Table2Extended runs the CWE-416 (use-after-free) and CWE-415 (double
// free) extension suites — temporal errors beyond the paper's Table 2,
// validating the redzone component's Free-state detection.
func Table2Extended(w io.Writer) ([]Table2Row, error) {
	suites := []struct {
		id    string
		cases []*juliet.Case
	}{
		{"CWE-416-Use-After-Free", juliet.UAFCases()},
		{"CWE-415-Double-Free", juliet.DoubleFreeCases()},
	}
	var rows []Table2Row
	for _, s := range suites {
		row := Table2Row{ID: s.id, Total: len(s.cases)}
		for _, c := range s.cases {
			rf, mc, err := detects(c)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", c.ID, err)
			}
			row.RedFat += b2i(rf)
			row.Memcheck += b2i(mc)
		}
		rows = append(rows, row)
	}
	if w != nil {
		for _, r := range rows {
			fmt.Fprintf(w, "%-34s Memcheck %3d/%d (%3.0f%%)  RedFat %3d/%d (%3.0f%%)\n",
				r.ID, r.Memcheck, r.Total, 100*float64(r.Memcheck)/float64(r.Total),
				r.RedFat, r.Total, 100*float64(r.RedFat)/float64(r.Total))
		}
	}
	return rows, nil
}

// Fig8Row is one Kraken sub-benchmark's overhead.
type Fig8Row struct {
	Name     string  `json:"name"`
	Slowdown float64 `json:"slowdown"`
}

// Figure8 builds the Chrome-scale binary, hardens all writes with
// (Redzone)+(LowFat), and measures per-Kraken-benchmark overhead (§7.3).
func Figure8(fillerFuncs int, scale uint64, w io.Writer) ([]Fig8Row, float64, error) {
	bin, err := kraken.Build(fillerFuncs)
	if err != nil {
		return nil, 0, err
	}
	opt := redfat.Defaults()
	opt.CheckReads = false // §7.3: write protection
	hard, rep, err := redfat.Harden(bin, opt)
	if err != nil {
		return nil, 0, err
	}
	if w != nil {
		fmt.Fprintf(w, "chrome image: text %d bytes, %s\n",
			len(bin.Text().Data), rep.String())
	}
	var rows []Fig8Row
	for i, name := range kraken.Benchmarks {
		input := []uint64{uint64(i), scale}
		base, err := rtlib.RunBaseline(bin, rtlib.RunConfig{Input: input})
		if err != nil {
			return nil, 0, fmt.Errorf("%s baseline: %w", name, err)
		}
		v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{Input: input, Abort: true})
		if err != nil {
			return nil, 0, fmt.Errorf("%s hardened: %w", name, err)
		}
		if v.ExitCode != base.ExitCode {
			return nil, 0, fmt.Errorf("%s: checksum mismatch", name)
		}
		rows = append(rows, Fig8Row{Name: name,
			Slowdown: float64(v.Cycles) / float64(base.Cycles)})
	}
	xs := make([]float64, len(rows))
	for i, r := range rows {
		xs[i] = r.Slowdown
	}
	gm := GeoMean(xs)
	if w != nil {
		for _, r := range rows {
			fmt.Fprintf(w, "%-22s %6.0f%%\n", r.Name, r.Slowdown*100)
		}
		fmt.Fprintf(w, "%-22s %6.0f%%\n", "Geometric Mean", gm*100)
	}
	return rows, gm, nil
}
