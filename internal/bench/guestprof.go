package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"redfat/internal/forensics"
	"redfat/internal/redfat"
	"redfat/internal/rtlib"
	"redfat/internal/telemetry"
	"redfat/internal/vm"
	"redfat/internal/workload"
)

// GuestProfRow summarizes one benchmark's guest profile under the
// production (fully optimized) hardened configuration.
type GuestProfRow struct {
	Name    string  `json:"name"`
	Samples uint64  `json:"samples"`
	Cycles  uint64  `json:"cycles"`           // cycles attributed across samples
	Hottest string  `json:"hottest"`          // symbolized hottest leaf PC
	HotPct  float64 `json:"hot_pct"`          // its share of attributed cycles
	Folded  string  `json:"folded,omitempty"` // folded-stack file, if written
}

// GuestProfiles runs every benchmark hardened with the production
// configuration under the guest sampling profiler and summarizes the hot
// sites. When dir is non-empty, each benchmark's folded stacks
// (flamegraph input) are written to dir/<name>.folded. Benchmarks fan
// out as pool units; the profiler itself never perturbs guest cycles.
func (h *Harness) GuestProfiles(scale float64, dir string, w io.Writer) ([]GuestProfRow, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	bms := workload.All()
	rows, err := fanOut(h, "guestprof", len(bms),
		func(i int) string { return bms[i].Name },
		func(i int, reg *telemetry.Registry) (GuestProfRow, error) {
			bm := scaled(bms[i], scale)
			bin, err := bm.Build()
			if err != nil {
				return GuestProfRow{}, err
			}
			hard, _, err := redfat.Harden(bin, redfat.Defaults())
			if err != nil {
				return GuestProfRow{}, err
			}
			prof := &vm.GuestProfiler{}
			_, _, err = rtlib.RunHardened(hard, rtlib.RunConfig{
				Input: bm.RefInput(), Metrics: reg, Profiler: prof,
			})
			if err != nil {
				return GuestProfRow{}, fmt.Errorf("%s profiled run: %w", bm.Name, err)
			}
			sym := forensics.NewSymbolizer(hard)
			row := GuestProfRow{
				Name:    bm.Name,
				Samples: prof.SampleCount(),
				Cycles:  prof.TotalCycles(),
			}
			if hot := prof.HotPCs(); len(hot) > 0 {
				row.Hottest = sym.Format(hot[0].Stack[0])
				if row.Cycles > 0 {
					row.HotPct = 100 * float64(hot[0].Cycles) / float64(row.Cycles)
				}
			}
			if dir != "" {
				path := filepath.Join(dir, bm.Name+".folded")
				f, err := os.Create(path)
				if err != nil {
					return GuestProfRow{}, err
				}
				if err := forensics.WriteFolded(f, prof, sym); err != nil {
					f.Close()
					return GuestProfRow{}, err
				}
				if err := f.Close(); err != nil {
					return GuestProfRow{}, err
				}
				row.Folded = path
			}
			return row, nil
		})
	if err != nil {
		return nil, err
	}
	if w != nil {
		for _, r := range rows {
			fmt.Fprintf(w, "%-12s %8d samples %14d cycles  hottest %s (%.1f%%)\n",
				r.Name, r.Samples, r.Cycles, r.Hottest, r.HotPct)
		}
	}
	return rows, nil
}

// GuestProfiles is the serial form of Harness.GuestProfiles.
func GuestProfiles(scale float64, dir string, w io.Writer) ([]GuestProfRow, error) {
	return (&Harness{}).GuestProfiles(scale, dir, w)
}
