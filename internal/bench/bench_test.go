package bench_test

import (
	"strings"
	"testing"

	"redfat/internal/bench"
	"redfat/internal/workload"
)

func TestGeoMean(t *testing.T) {
	if g := bench.GeoMean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Errorf("GeoMean(2,8) = %v", g)
	}
	if g := bench.GeoMean(nil); g != 0 {
		t.Errorf("GeoMean(nil) = %v", g)
	}
	if g := bench.GeoMean([]float64{0, -1, 3}); g < 2.99 || g > 3.01 {
		t.Errorf("GeoMean with junk = %v", g)
	}
}

func TestTable1SingleBenchmark(t *testing.T) {
	row, err := bench.Table1Bench(workload.ByName("libquantum"), 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if !row.ChecksumOK {
		t.Error("checksum mismatch")
	}
	// The optimization ladder must be monotone non-increasing and the
	// ordering of Table 1 must hold: unopt ≥ elim ≥ batch ≥ merge ≥
	// dom ≥ ind ≥ nosize ≥ noreads > 1. (libquantum carries no jump
	// tables, so +ind must exactly match +dom — pinned separately.)
	seq := []float64{row.Unopt, row.Elim, row.Batch, row.Merge, row.Dom, row.Ind, row.NoSize, row.NoReads}
	for i := 1; i < len(seq); i++ {
		if seq[i] > seq[i-1]*1.02 { // tiny tolerance
			t.Errorf("optimization step %d regressed: %v", i, seq)
		}
	}
	if row.NoReads <= 1.0 {
		t.Errorf("write-only slowdown %.2f ≤ 1", row.NoReads)
	}
	if row.Memcheck <= row.NoSize {
		t.Errorf("Memcheck (%.2fx) not slower than RedFat -size (%.2fx)",
			row.Memcheck, row.NoSize)
	}
	if row.Coverage < 0.9 {
		t.Errorf("libquantum coverage %.2f, want ≈1 (ungated)", row.Coverage)
	}
	if row.Ind != row.Dom {
		t.Errorf("+ind (%.4fx) differs from +dom (%.4fx) on a non-marker binary", row.Ind, row.Dom)
	}
}

// TestTable1SwitchDense pins the column the recovery adds: on a
// marker-built benchmark the +ind step must strictly beat +dom (the
// recovered edges unlock dominated-check elimination inside the
// dispatch loop) while the checksum stays intact.
func TestTable1SwitchDense(t *testing.T) {
	row, err := bench.Table1Bench(workload.ByName("interp"), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !row.ChecksumOK {
		t.Error("checksum mismatch")
	}
	if row.Ind >= row.Dom {
		t.Errorf("+ind (%.4fx) did not beat +dom (%.4fx) on the switch-dense interpreter",
			row.Ind, row.Dom)
	}
}

func TestIndirectSweep(t *testing.T) {
	rows, err := bench.IndirectSweep(nil, 0.02, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	blocked, prod := rows[1], rows[3]
	if !blocked.NoIndirect || !blocked.ElimDom {
		t.Fatalf("row 1 is not the recovery-off/dom configuration: %+v", blocked)
	}
	if prod.NoIndirect || !prod.ElimDom {
		t.Fatalf("last row is not the production configuration: %+v", prod)
	}
	// Recovery must claim edges, unlock eliminations the Unknown frontier
	// blocked, and not cost guest cycles.
	if blocked.Resolved != 0 {
		t.Errorf("recovery-off rows claim %d resolved sites, want 0", blocked.Resolved)
	}
	if prod.Resolved == 0 {
		t.Error("production rows resolved no indirect sites on the switch-dense suite")
	}
	if prod.Eliminated <= blocked.Eliminated {
		t.Errorf("recovery unlocked no eliminations: noind=%d ind=%d",
			blocked.Eliminated, prod.Eliminated)
	}
	if prod.TotalCycles > blocked.TotalCycles {
		t.Errorf("recovery cost cycles: noind=%d ind=%d", blocked.TotalCycles, prod.TotalCycles)
	}
}

func TestDetectedErrors(t *testing.T) {
	row, err := bench.Table1Bench(workload.ByName("calculix"), 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if row.DetectedErrors < 4 {
		t.Errorf("calculix detected errors = %d, want ≥4", row.DetectedErrors)
	}
	row, err = bench.Table1Bench(workload.ByName("wrf"), 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if row.DetectedErrors < 1 {
		t.Errorf("wrf detected errors = %d, want ≥1", row.DetectedErrors)
	}
}

func TestFalsePositiveCountsMatchPaper(t *testing.T) {
	rows, err := bench.FalsePositives(0.02, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Paper §7.1: perlbench 1, gcc 14, gobmk 1, povray 1, bwaves 5,
	// gromacs 3, GemsFDTD 32, wrf 26, calculix 2.
	want := map[string]int{
		"perlbench": 1, "gcc": 14, "gobmk": 1, "povray": 1, "bwaves": 5,
		"gromacs": 3, "GemsFDTD": 32, "wrf": 26, "calculix": 2,
	}
	got := map[string]int{}
	for _, r := range rows {
		got[r.Name] = r.Count
	}
	for name, n := range want {
		if got[name] != n {
			t.Errorf("%s: %d false positives, paper reports %d", name, got[name], n)
		}
	}
	if len(rows) != len(want) {
		t.Errorf("FP rows = %d benchmarks, want %d", len(rows), len(want))
	}
}

func TestTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("480-case sweep")
	}
	var sb strings.Builder
	rows, err := bench.Table2(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	for _, r := range rows {
		if r.RedFat != r.Total {
			t.Errorf("%s: RedFat %d/%d, want 100%%", r.ID, r.RedFat, r.Total)
		}
		// Non-incremental overflows (CVE + Juliet rows) skip the redzone:
		// Memcheck misses all of them. The libc rows overflow contiguously
		// through an interposed routine: Memcheck's mem* wrappers catch
		// those, but it does not wrap the string routines, so the strcpy
		// overflow is a RedFat-only detection.
		wantMC := 0
		if strings.HasPrefix(r.ID, "LIBC-mem") {
			wantMC = r.Total
		}
		if r.Memcheck != wantMC {
			t.Errorf("%s: Memcheck %d/%d, want %d", r.ID, r.Memcheck, r.Total, wantMC)
		}
	}
	if !strings.Contains(sb.String(), "Juliet") {
		t.Error("rendering missing Juliet row")
	}
	if !strings.Contains(sb.String(), "LIBC-strcpy-write") {
		t.Error("rendering missing libc rows")
	}
}

func TestFigure8(t *testing.T) {
	rows, gm, err := bench.Figure8(512, 120, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("rows = %d, want 14", len(rows))
	}
	if gm < 1.02 || gm > 3.0 {
		t.Errorf("Kraken geomean %.2fx outside the plausible write-only band", gm)
	}
	for _, r := range rows {
		if r.Slowdown < 1.0 {
			t.Errorf("%s: slowdown %.2f < 1", r.Name, r.Slowdown)
		}
	}
}

func TestTactics(t *testing.T) {
	rows, err := bench.Tactics(256, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 30 { // 29 SPEC + chrome
		t.Fatalf("rows = %d, want 30", len(rows))
	}
	for _, r := range rows {
		if r.Checks == 0 {
			t.Errorf("%s: no checks", r.Name)
		}
		if r.T1+r.T2+r.T3 == 0 {
			t.Errorf("%s: no patches recorded", r.Name)
		}
	}
}

func TestBatchSweep(t *testing.T) {
	rows, err := bench.BatchSweep("povray", 0.02, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Wider batches must not be slower than no batching.
	if rows[len(rows)-1].Slowdown > rows[0].Slowdown*1.02 {
		t.Errorf("batching made things worse: %v", rows)
	}
}

func TestClobberSweep(t *testing.T) {
	rows, err := bench.ClobberSweep("sjeng", 0.02, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].Slowdown > rows[0].Slowdown*1.01 {
		t.Errorf("clobber specialization did not help: %+v", rows)
	}
}

func TestDataflowSweep(t *testing.T) {
	names := []string{"libquantum", "povray", "calculix", "sjeng"}
	rows, err := bench.DataflowSweep(names, 0.02, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	// The production configuration (global liveness + dominator
	// elimination, last row) must beat the pre-engine configuration
	// (block-local liveness, no elimination, first row) on total cycles.
	before, after := rows[0], rows[len(rows)-1]
	if before.ElimDom || !before.LocalLiveness {
		t.Fatalf("row 0 is not the pre-engine configuration: %+v", before)
	}
	if !after.ElimDom || after.LocalLiveness {
		t.Fatalf("last row is not the production configuration: %+v", after)
	}
	if after.TotalCycles >= before.TotalCycles {
		t.Errorf("dataflow engine did not reduce cycles: before=%d after=%d",
			before.TotalCycles, after.TotalCycles)
	}
}

func TestFuzzBoostStudy(t *testing.T) {
	budgets := []int{1, 120}
	if testing.Short() {
		budgets = []int{1, 30} // the race-detector run: a smaller budget still shows the trend
	}
	rows, err := bench.FuzzBoostStudy("h264ref", budgets, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].Coverage <= rows[0].Coverage {
		t.Errorf("fuzzing did not raise coverage: %+v", rows)
	}
}

func TestTable2Extended(t *testing.T) {
	rows, err := bench.Table2Extended(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.RedFat != r.Total {
			t.Errorf("%s: RedFat %d/%d, want all detected", r.ID, r.RedFat, r.Total)
		}
	}
}
