package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"

	"redfat/internal/telemetry"
)

// Harness runs the experiments of this package over a bounded worker
// pool. The zero value is the legacy serial harness: one worker, no
// progress output, no telemetry.
//
// Every experiment decomposes into independent units (a benchmark, a
// benchmark × configuration cell, a Juliet case, ...), the units fan out
// over Parallel workers, and the results are assembled and rendered in
// unit order afterwards — so the rendered tables are byte-identical at
// any worker count. Each unit that needs telemetry gets its own private
// Registry, merged into Metrics (in unit order, from one goroutine) only
// after the pool has quiesced; see the single-owner contract in package
// telemetry.
type Harness struct {
	// Parallel is the worker-pool width; <= 0 selects one worker.
	Parallel int
	// Progress, when set, receives one line per completed unit.
	Progress io.Writer
	// Metrics, when set, aggregates telemetry across all units.
	Metrics *telemetry.Registry
}

// workers returns the effective pool width.
func (h *Harness) workers() int {
	if h == nil || h.Parallel <= 0 {
		return 1
	}
	return h.Parallel
}

// DefaultParallel is the recommended pool width for interactive use.
func DefaultParallel() int { return runtime.NumCPU() }

// fanOut runs units 0..n-1 through fn on the harness's worker pool and
// returns the per-unit results in index order. The first failure (lowest
// unit index among observed failures) cancels the remaining un-started
// units and is returned; units already in flight run to completion.
// name(i) labels unit i in progress lines. When h.Metrics is set, every
// unit receives a fresh private registry; the registries of completed
// units are merged into h.Metrics in unit order after all workers exit.
func fanOut[T any](h *Harness, what string, n int, name func(int) string, fn func(i int, reg *telemetry.Registry) (T, error)) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)
	var regs []*telemetry.Registry
	if h != nil && h.Metrics != nil {
		regs = make([]*telemetry.Registry, n)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	idx := make(chan int, n)
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)

	var (
		mu   sync.Mutex
		done int
	)
	report := func(i int, status string) {
		if h == nil || h.Progress == nil {
			return
		}
		mu.Lock()
		done++
		fmt.Fprintf(h.Progress, "%s %s: %s (%d/%d)\n", what, name(i), status, done, n)
		mu.Unlock()
	}

	width := h.workers()
	if width > n {
		width = n
	}
	var wg sync.WaitGroup
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					return
				}
				var reg *telemetry.Registry
				if regs != nil {
					reg = telemetry.New()
					regs[i] = reg
				}
				res, err := fn(i, reg)
				if err != nil {
					errs[i] = err
					report(i, "FAIL: "+err.Error())
					cancel()
					continue
				}
				results[i] = res
				report(i, "ok")
			}
		}()
	}
	wg.Wait()

	// Single-owner aggregation: the workers have quiesced; fold the
	// per-unit registries into the aggregate in deterministic unit order.
	for _, reg := range regs {
		h.Metrics.Merge(reg)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
