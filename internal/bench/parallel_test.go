package bench

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"redfat/internal/mem"
	"redfat/internal/telemetry"
)

// TestFanOutOrder checks that results come back in unit order regardless
// of pool width or completion order.
func TestFanOutOrder(t *testing.T) {
	for _, width := range []int{1, 3, 8, 64} {
		h := &Harness{Parallel: width}
		got, err := fanOut(h, "order", 50,
			func(i int) string { return fmt.Sprintf("u%d", i) },
			func(i int, _ *telemetry.Registry) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("width %d: unit %d = %d, want %d", width, i, v, i*i)
			}
		}
	}
}

// TestFanOutFirstErrorCancels checks that a failing unit cancels the
// un-started remainder and that its error is the one returned.
func TestFanOutFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var ran [10]bool
	h := &Harness{Parallel: 1} // serial: deterministic unit order
	_, err := fanOut(h, "cancel", len(ran),
		func(i int) string { return fmt.Sprintf("u%d", i) },
		func(i int, _ *telemetry.Registry) (int, error) {
			ran[i] = true
			if i == 3 {
				return 0, boom
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want %v", err, boom)
	}
	for i := 0; i <= 3; i++ {
		if !ran[i] {
			t.Errorf("unit %d did not run before the failure", i)
		}
	}
	for i := 4; i < len(ran); i++ {
		if ran[i] {
			t.Errorf("unit %d ran after unit 3 failed", i)
		}
	}
}

// TestFanOutProgress checks the per-unit progress lines: one line per
// unit, the done counter reaching n/n, and the FAIL marker on errors.
func TestFanOutProgress(t *testing.T) {
	var buf bytes.Buffer
	h := &Harness{Parallel: 4, Progress: &buf}
	if _, err := fanOut(h, "prog", 12,
		func(i int) string { return fmt.Sprintf("u%d", i) },
		func(i int, _ *telemetry.Registry) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 12 {
		t.Fatalf("progress lines = %d, want 12:\n%s", len(lines), buf.String())
	}
	if !strings.Contains(lines[len(lines)-1], "(12/12)") {
		t.Errorf("last line %q missing (12/12)", lines[len(lines)-1])
	}

	buf.Reset()
	boom := errors.New("boom")
	_, err := fanOut(&Harness{Parallel: 1, Progress: &buf}, "prog", 3,
		func(i int) string { return fmt.Sprintf("u%d", i) },
		func(i int, _ *telemetry.Registry) (int, error) {
			if i == 1 {
				return 0, boom
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want %v", err, boom)
	}
	if !strings.Contains(buf.String(), "prog u1: FAIL: boom") {
		t.Errorf("progress output missing FAIL line:\n%s", buf.String())
	}
}

// TestFanOutTelemetryMerge checks single-owner aggregation: each unit
// writes to its private registry and the aggregate holds the exact sum
// after the pool quiesces.
func TestFanOutTelemetryMerge(t *testing.T) {
	agg := telemetry.New()
	h := &Harness{Parallel: 8, Metrics: agg}
	const n = 40
	if _, err := fanOut(h, "merge", n,
		func(i int) string { return fmt.Sprintf("u%d", i) },
		func(i int, reg *telemetry.Registry) (int, error) {
			reg.Counter("test.units").Inc()
			reg.Counter("test.weight").Add(uint64(i))
			reg.Histogram("test.hist", telemetry.Pow2Bounds(0, 4)).Observe(uint64(i))
			return i, nil
		}); err != nil {
		t.Fatal(err)
	}
	if got := agg.CounterValue("test.units"); got != n {
		t.Errorf("test.units = %d, want %d", got, n)
	}
	want := uint64(n * (n - 1) / 2)
	if got := agg.CounterValue("test.weight"); got != want {
		t.Errorf("test.weight = %d, want %d", got, want)
	}
	if got := agg.Snapshot().Histograms["test.hist"].Count; got != n {
		t.Errorf("test.hist count = %d, want %d", got, n)
	}
}

// TestTLBParallelRace hammers guest-memory mapping churn — Map, Protect,
// Unmap interleaved with loads and stores that hit and miss the software
// TLB — across a wide worker pool. Each unit owns a private Memory, so a
// -race run proves the TLB carries no shared mutable state through the
// harness, and each unit cross-checks its TLB results against a NoTLB
// shadow for identity.
func TestTLBParallelRace(t *testing.T) {
	h := &Harness{Parallel: 8}
	const units = 24
	if _, err := fanOut(h, "tlbrace", units,
		func(i int) string { return fmt.Sprintf("u%d", i) },
		func(unit int, _ *telemetry.Registry) (int, error) {
			rng := rand.New(rand.NewSource(int64(unit)))
			m := mem.New()
			shadow := mem.New()
			shadow.NoTLB = true
			const (
				base  = uint64(0x4000)
				pages = 32
				span  = pages * mem.PageSize
			)
			m.Map(base, span, mem.PermRW)
			shadow.Map(base, span, mem.PermRW)
			for op := 0; op < 3000; op++ {
				page := base + uint64(rng.Intn(pages))*mem.PageSize
				addr := base + uint64(rng.Intn(span-16))
				switch rng.Intn(6) {
				case 0:
					m.Protect(page, mem.PageSize, mem.PermRead)
					shadow.Protect(page, mem.PageSize, mem.PermRead)
				case 1:
					m.Protect(page, mem.PageSize, mem.PermRW)
					shadow.Protect(page, mem.PageSize, mem.PermRW)
				case 2:
					m.Unmap(page, mem.PageSize)
					shadow.Unmap(page, mem.PageSize)
					m.Map(page, mem.PageSize, mem.PermRW)
					shadow.Map(page, mem.PageSize, mem.PermRW)
				case 3:
					if err := m.Store(addr, 8, uint64(op)); err == nil {
						shadow.Store(addr, 8, uint64(op))
					} else if shadow.Store(addr, 8, uint64(op)) == nil {
						return 0, fmt.Errorf("unit %d op %d: store diverged at %#x", unit, op, addr)
					}
				default:
					a, errA := m.Load(addr, 8)
					b, errB := shadow.Load(addr, 8)
					if (errA == nil) != (errB == nil) || a != b {
						return 0, fmt.Errorf("unit %d op %d: load diverged at %#x: %v/%v %d/%d",
							unit, op, addr, errA, errB, a, b)
					}
				}
			}
			return unit, nil
		}); err != nil {
		t.Fatal(err)
	}
}

// TestFigure8ParallelIdentity checks that the rendered Figure 8 output is
// byte-identical between the serial harness and a wide pool.
func TestFigure8ParallelIdentity(t *testing.T) {
	render := func(width int) (string, []Fig8Row, float64) {
		var buf bytes.Buffer
		rows, gm, err := (&Harness{Parallel: width}).Figure8(512, 300, &buf)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		return buf.String(), rows, gm
	}
	serialOut, serialRows, serialGM := render(1)
	parOut, parRows, parGM := render(8)
	if serialOut != parOut {
		t.Errorf("rendered output differs between serial and parallel:\n--- serial\n%s--- parallel\n%s",
			serialOut, parOut)
	}
	if !reflect.DeepEqual(serialRows, parRows) || serialGM != parGM {
		t.Errorf("rows/geomean differ: serial %v (%v), parallel %v (%v)",
			serialRows, serialGM, parRows, parGM)
	}
}

// TestTable2ExtendedParallelIdentity checks serial/parallel identity on
// the temporal-error suites (per-case fan-out).
func TestTable2ExtendedParallelIdentity(t *testing.T) {
	render := func(width int) (string, []Table2Row) {
		var buf bytes.Buffer
		rows, err := (&Harness{Parallel: width}).Table2Extended(&buf)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		return buf.String(), rows
	}
	serialOut, serialRows := render(1)
	parOut, parRows := render(8)
	if serialOut != parOut {
		t.Errorf("rendered output differs:\n--- serial\n%s--- parallel\n%s", serialOut, parOut)
	}
	if !reflect.DeepEqual(serialRows, parRows) {
		t.Errorf("rows differ: serial %v, parallel %v", serialRows, parRows)
	}
}

// TestTable1ParallelIdentity checks that the full Table 1 pipeline —
// rendered bytes, rows, and aggregate telemetry — is identical between
// the serial harness and a wide pool.
func TestTable1ParallelIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 1 comparison skipped in -short mode")
	}
	render := func(width int) (string, []*Table1Row, *telemetry.Snapshot) {
		var buf bytes.Buffer
		h := &Harness{Parallel: width, Metrics: telemetry.New()}
		rows, err := h.Table1(0.02, &buf)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		return buf.String(), rows, h.Metrics.Snapshot()
	}
	serialOut, serialRows, serialTel := render(1)
	parOut, parRows, parTel := render(8)
	// The superblock compile-time histogram is wall-clock host timing;
	// its bucket placement legitimately differs between two executions.
	// Every other metric is deterministic and must match exactly.
	delete(serialTel.Histograms, "vm.jit.compile.ns")
	delete(parTel.Histograms, "vm.jit.compile.ns")
	if serialOut != parOut {
		t.Errorf("rendered table differs between serial and parallel:\n--- serial\n%s--- parallel\n%s",
			serialOut, parOut)
	}
	if !reflect.DeepEqual(serialRows, parRows) {
		t.Errorf("rows differ between serial and parallel")
	}
	if !reflect.DeepEqual(serialTel, parTel) {
		t.Errorf("aggregate telemetry differs between serial and parallel")
	}
	if serialTel.Counters["vm.retired.total"] == 0 {
		t.Errorf("aggregate telemetry has no retired instructions")
	}
}
