package bench

import (
	"strings"
	"testing"
)

func trajResults(merge, coverage float64) *Results {
	return &Results{
		SchemaVersion: SchemaVersion,
		Scale:         0.02,
		Table1: []*Table1Row{
			{Name: "bzip2", Coverage: coverage, Merge: merge},
		},
		Table1Summary: &Table1Summary{MeanCoverage: coverage, Merge: merge,
			Unopt: 2, Elim: 1.8, Batch: 1.5, NoSize: 1.4, NoReads: 1.2, Memcheck: 20},
	}
}

func TestCompareFlagsDirectionalRegressions(t *testing.T) {
	base := trajResults(1.5, 0.9)
	// Overhead up 20% and coverage down 20%: both regress at the default
	// ±10% threshold.
	curr := trajResults(1.8, 0.72)
	traj := Compare(curr, base, 0)
	regs := traj.Regressions()
	if len(regs) != 3 { // summary merge, per-benchmark merge, mean_coverage
		t.Fatalf("want 3 regressions, got %d: %+v", len(regs), regs)
	}
	for _, d := range regs {
		switch {
		case d.Metric == "mean_coverage" && d.LowerIsBetter:
			t.Errorf("coverage must be higher-is-better: %+v", d)
		case strings.Contains(d.Metric, "merge") && !d.LowerIsBetter:
			t.Errorf("overhead must be lower-is-better: %+v", d)
		}
	}

	// Improvements in the same magnitude do not regress.
	better := trajResults(1.2, 0.99)
	if regs := Compare(better, base, 0).Regressions(); len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %+v", regs)
	}

	// Identical runs diff to zero everywhere.
	same := Compare(trajResults(1.5, 0.9), base, 0)
	for _, d := range same.Deltas {
		if d.Rel != 0 || d.Regress {
			t.Fatalf("identical runs produced nonzero delta: %+v", d)
		}
	}
}

func TestCompareNotesScaleMismatchAndOneSidedSections(t *testing.T) {
	base := trajResults(1.5, 0.9)
	curr := trajResults(1.5, 0.9)
	curr.Scale = 1.0
	curr.Figure8 = &Figure8Result{GeoMean: 1.3}
	traj := Compare(curr, base, 0)
	var sawScale, sawFig8 bool
	for _, n := range traj.Notes {
		if strings.Contains(n, "scale differs") {
			sawScale = true
		}
		if strings.Contains(n, "figure8") && strings.Contains(n, "current run only") {
			sawFig8 = true
		}
	}
	if !sawScale || !sawFig8 {
		t.Fatalf("missing notes (scale=%v figure8=%v): %v", sawScale, sawFig8, traj.Notes)
	}
}

func TestParseResultsRejectsWrongSchema(t *testing.T) {
	if _, err := ParseResults([]byte(`{"scale": 1}`)); err == nil ||
		!strings.Contains(err.Error(), "schema_version") {
		t.Fatalf("missing schema accepted: %v", err)
	}
	if _, err := ParseResults([]byte(`{"schema_version": 999}`)); err == nil ||
		!strings.Contains(err.Error(), "schema_version") {
		t.Fatalf("future schema accepted: %v", err)
	}
	if _, err := ParseResults([]byte(`not json`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	r := trajResults(1.5, 0.9)
	data, err := r.MarshalJSONBytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseResults(data)
	if err != nil {
		t.Fatalf("round-trip rejected: %v", err)
	}
	if got.Table1Summary == nil || got.Table1Summary.Merge != 1.5 {
		t.Fatalf("round-trip lost data: %+v", got.Table1Summary)
	}
}

func TestTrajectoryRender(t *testing.T) {
	base := trajResults(1.5, 0.9)
	curr := trajResults(1.8, 0.9)
	var sb strings.Builder
	if err := Compare(curr, base, 0).Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "REGRESS") {
		t.Errorf("regression not flagged:\n%s", out)
	}
	if !strings.Contains(out, "regression(s) beyond") {
		t.Errorf("summary line missing:\n%s", out)
	}
}
