package rtlib

import (
	"fmt"

	"redfat/internal/lowfat"
	"redfat/internal/redzone"
	"redfat/internal/relf"
	"redfat/internal/telemetry"
	"redfat/internal/vm"
)

// SiteStat accumulates per-site check counters (paper Fig. 5, step 1):
// how often the site executed, and the pass/fail verdicts attributed to
// the LowFat (base(ptr)) vs Redzone (base(LB) fallback) component.
type SiteStat struct {
	Execs        uint64
	LowFatFails  uint64 // flagged via the base(ptr) LowFat path
	RedzoneFails uint64 // flagged via the base(LB) redzone fallback
	NonFat       uint64 // executions that early-exited (both paths non-fat)
}

// Fails returns the total number of flagged executions at the site.
func (s SiteStat) Fails() uint64 { return s.LowFatFails + s.RedzoneFails }

// Passes returns the number of executions that ran the check cleanly.
func (s SiteStat) Passes() uint64 { return s.Execs - s.Fails() }

// Runtime is the libredfat runtime instance bound to one hardened binary:
// it holds the site table, the RedFat heap, and the profiling counters.
type Runtime struct {
	Checks []Check
	Heap   *redzone.Heap
	Stats  []SiteStat

	// fast holds the per-site precomputed execution plans, Checks-parallel
	// (the load-time specialization the real RedFat bakes into trampoline
	// code at rewrite time).
	fast []checkFast

	tel    *checkMetrics
	tracer *telemetry.Tracer
}

// checkMetrics holds the check runtime's aggregate registry handles; the
// per-site resolution stays in Stats and is exported on demand.
type checkMetrics struct {
	execs       *telemetry.Counter
	passes      *telemetry.Counter
	lowfatFail  *telemetry.Counter
	redzoneFail *telemetry.Counter
	nonfat      *telemetry.Counter
}

// AttachTelemetry binds the runtime's aggregate check counters to reg and
// its check-outcome events to tr (either may be nil).
func (rt *Runtime) AttachTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) {
	rt.tracer = tr
	if reg == nil {
		return
	}
	rt.tel = &checkMetrics{
		execs:       reg.Counter("check.execs"),
		passes:      reg.Counter("check.pass"),
		lowfatFail:  reg.Counter("check.fail.lowfat"),
		redzoneFail: reg.Counter("check.fail.redzone"),
		nonfat:      reg.Counter("check.nonfat"),
	}
}

// PublishSiteStats exports the per-site pass/fail counters into reg under
// stable names keyed by the site's original instruction address, so
// machine consumers see the same resolution rfvm -stats prints.
func (rt *Runtime) PublishSiteStats(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	for i := range rt.Checks {
		st := rt.Stats[i]
		if st.Execs == 0 {
			continue
		}
		prefix := fmt.Sprintf("site.%#x.", rt.Checks[i].PC)
		reg.Counter(prefix + "execs").Add(st.Execs)
		reg.Counter(prefix + "pass").Add(st.Passes())
		if st.LowFatFails > 0 {
			reg.Counter(prefix + "fail.lowfat").Add(st.LowFatFails)
		}
		if st.RedzoneFails > 0 {
			reg.Counter(prefix + "fail.redzone").Add(st.RedzoneFails)
		}
	}
}

// ErrorSites returns the distinct original instruction addresses whose
// checks flagged at least one execution — the stats-backed view for
// consumers that have a Runtime rather than a trapped-error list. The
// sort-and-dedup itself is vm.SiteList, the one implementation behind
// every "distinct error sites" view.
func (rt *Runtime) ErrorSites() []uint64 {
	var pcs []uint64
	for i := range rt.Checks {
		if rt.Stats[i].Fails() > 0 {
			pcs = append(pcs, rt.Checks[i].PC)
		}
	}
	return vm.SiteList(pcs)
}

// NewRuntime parses the site table of a hardened binary.
func NewRuntime(bin *relf.Binary, h *redzone.Heap) (*Runtime, error) {
	checks, err := SitesFrom(bin)
	if err != nil {
		return nil, err
	}
	return &Runtime{
		Checks: checks,
		Heap:   h,
		Stats:  make([]SiteStat, len(checks)),
		fast:   compileChecks(checks),
	}, nil
}

// Bindings returns the host binding for the check routine.
func (rt *Runtime) Bindings() vm.Bindings {
	return vm.Bindings{CheckImport: rt.handle}
}

// handle is the instrumented check of paper Fig. 4, executed when a
// trampoline's RTCALL fires. arg is the site index.
func (rt *Runtime) handle(v *vm.VM, arg uint32) error {
	return rt.execSite(v, arg, nil)
}

// execSite is one full check execution. When o is non-nil (the site runs
// as a fused superblock leader) the derived object base, fat outcomes,
// metadata word and verdict class are published for elided followers;
// behavior is otherwise identical to the trampoline path.
func (rt *Runtime) execSite(v *vm.VM, arg uint32, o *vm.CheckOutcome) error {
	if int(arg) >= len(rt.Checks) {
		return &vm.MemError{Kind: vm.ErrCorruptMeta, PC: v.RIP,
			Note: "check with invalid site index"}
	}
	c := &rt.Checks[arg]
	cf := &rt.fast[arg]
	rt.Stats[arg].Execs++
	if rt.tel != nil {
		rt.tel.execs.Inc()
	}

	// STEP (1): the access range, rebuilt from the precomputed operand
	// plan (paper §4.1): ptr is the base register, the offset folds the
	// displacement, RIP bias, index*scale and segment base.
	ptr, lb, ub := cf.accessRange(v)

	// STEP (2): the object base. Full/Profile first try base(ptr) — the
	// LowFat component — and fall back to base(LB) — the Redzone
	// component — for non-fat pointers.
	var base uint64
	fat := false
	if cf.tryLowFat {
		base = lowfat.Base(ptr)
		fat = base != 0
	}
	fallback := !fat
	fallbackFat := false
	if base == 0 {
		base = lowfat.Base(lb)
		fallbackFat = base != 0
	}
	v.Cycles += cf.costs[fatIdx(fat, fallbackFat)]
	if base == 0 {
		if o != nil {
			*o = vm.CheckOutcome{} // both paths non-fat: followers early-exit too
		}
		rt.Stats[arg].NonFat++
		if rt.tel != nil {
			rt.tel.nonfat.Inc()
		}
		return nil // non-fat pointer and non-fat access: nothing to check
	}

	// STEP (3): metadata from the redzone header. Low-fat region memory
	// is demand-zero in the real allocator, so a slot never handed out
	// reads SIZE=0 and fails the merged bounds check below; we emulate
	// that for headers on unmapped pages.
	size, err := rt.Heap.Mem.Load(base, 8)
	wild := false
	if err != nil {
		size, wild = 0, true
	}

	// STEP (4): the checks. The class abstracts the verdict for elided
	// followers (it is a pure function of the access range and heap
	// state); kind folds in this site's own read/write direction.
	var kind vm.MemErrorKind
	class := vm.CheckOK
	bad := false
	switch {
	case cf.sizeCheck && lowfat.Size(base) != lowfat.SizeMax &&
		size > lowfat.Size(base)-redzone.Size:
		kind, bad, class = vm.ErrCorruptMeta, true, vm.CheckMeta
	case size == 0:
		// Free state is encoded as SIZE=0; the merged bounds check
		// always fails, i.e. a use-after-free (or a wild pointer into
		// an unallocated slot, which reads as zero).
		kind, bad, class = vm.ErrUseAfterFree, true, vm.CheckUAF
		if wild {
			kind, class = cf.oobKind, vm.CheckOOB
		}
	case lb < base+redzone.Size || ub > base+redzone.Size+size:
		kind, bad, class = cf.oobKind, true, vm.CheckOOB
	}
	if o != nil {
		*o = vm.CheckOutcome{Base: base, Fat: fat, FallbackFat: fallbackFat,
			Size: size, Class: class}
	}

	// Attribute the verdict: a violation found via base(ptr) is the
	// LowFat component's, one found via the fallback base(LB) is the
	// redzone component's. The split feeds both the allow-list (only
	// LowFat failures disqualify a site) and the exported site stats.
	component := ""
	if bad {
		if fat && !fallback {
			component = "lowfat"
			rt.Stats[arg].LowFatFails++
			if rt.tel != nil {
				rt.tel.lowfatFail.Inc()
			}
		} else {
			component = "redzone"
			rt.Stats[arg].RedzoneFails++
			if rt.tel != nil {
				rt.tel.redzoneFail.Inc()
			}
		}
		if rt.tracer != nil {
			rt.tracer.RecordAt(telemetry.EvCheckFail, c.PC, lb, uint64(arg), v.Cycles)
		}
	} else {
		if rt.tel != nil {
			rt.tel.passes.Inc()
		}
		if rt.tracer != nil {
			rt.tracer.RecordAt(telemetry.EvCheckPass, c.PC, lb, uint64(arg), v.Cycles)
		}
	}

	if cf.profile {
		// Profiling records verdicts and never aborts.
		return nil
	}
	if !bad {
		return nil
	}
	return v.Report(vm.MemError{
		Kind:      kind,
		Addr:      lb,
		PC:        c.PC,
		Site:      arg,
		Component: component,
		Note:      rt.describe(c, base, size, lb),
	})
}

// forwardSite replays a leading site's published outcome at an elided
// follower. The superblock tier only elides a site when its access plan
// is identical to the leader's and nothing between them wrote the plan
// registers or guest memory, so the base derivation, metadata word and
// verdict class are provably the leader's; what remains is this site's
// own accounting — per-site stats, the charged cycle cost, telemetry,
// and an error report with the site's own read/write kind and note.
func (rt *Runtime) forwardSite(v *vm.VM, arg uint32, o *vm.CheckOutcome) error {
	c := &rt.Checks[arg]
	cf := &rt.fast[arg]
	rt.Stats[arg].Execs++
	if rt.tel != nil {
		rt.tel.execs.Inc()
	}
	v.Cycles += cf.costs[fatIdx(o.Fat, o.FallbackFat)]
	if !o.Fat && !o.FallbackFat {
		rt.Stats[arg].NonFat++
		if rt.tel != nil {
			rt.tel.nonfat.Inc()
		}
		return nil
	}
	// The plan registers are unchanged since the leader ran, so this
	// recomputes the leader's lb — two register reads, no base lookup.
	_, lb, _ := cf.accessRange(v)

	var kind vm.MemErrorKind
	bad := o.Class != vm.CheckOK
	switch o.Class {
	case vm.CheckMeta:
		kind = vm.ErrCorruptMeta
	case vm.CheckUAF:
		kind = vm.ErrUseAfterFree
	case vm.CheckOOB:
		kind = cf.oobKind
	}

	component := ""
	if bad {
		if o.Fat {
			component = "lowfat"
			rt.Stats[arg].LowFatFails++
			if rt.tel != nil {
				rt.tel.lowfatFail.Inc()
			}
		} else {
			component = "redzone"
			rt.Stats[arg].RedzoneFails++
			if rt.tel != nil {
				rt.tel.redzoneFail.Inc()
			}
		}
		if rt.tracer != nil {
			rt.tracer.RecordAt(telemetry.EvCheckFail, c.PC, lb, uint64(arg), v.Cycles)
		}
	} else {
		if rt.tel != nil {
			rt.tel.passes.Inc()
		}
		if rt.tracer != nil {
			rt.tracer.RecordAt(telemetry.EvCheckPass, c.PC, lb, uint64(arg), v.Cycles)
		}
	}

	if cf.profile || !bad {
		return nil
	}
	return v.Report(vm.MemError{
		Kind:      kind,
		Addr:      lb,
		PC:        c.PC,
		Site:      arg,
		Component: component,
		Note:      rt.describe(c, o.Base, o.Size, lb),
	})
}

// describe builds an ASAN-style diagnostic line for a detected error,
// using the allocation-site bookkeeping of the RedFat heap.
func (rt *Runtime) describe(c *Check, base, size, lb uint64) string {
	desc := fmt.Sprintf("%s check at operand %s", c.Mode, c.Operand.String())
	id, err := rt.Heap.Mem.Load(base+8, 8)
	if err != nil {
		return desc
	}
	allocPC, objSize, freePC, ok := rt.Heap.SiteOf(id)
	if !ok {
		return desc
	}
	tag := ""
	if rt.Heap.UnderAllocated(id) {
		tag = " (self-test under-allocation)"
	}
	if size == 0 && freePC != 0 {
		return fmt.Sprintf("%s; object (%d bytes, allocated at %#x) freed at %#x%s",
			desc, objSize, allocPC, freePC, tag)
	}
	off := int64(lb) - int64(base+redzone.Size)
	var where string
	switch {
	case off < 0:
		where = fmt.Sprintf("%d bytes before", -off)
	case off >= int64(objSize):
		where = fmt.Sprintf("%d bytes past the end of", off-int64(objSize))
	default:
		where = fmt.Sprintf("%d bytes into", off)
	}
	return fmt.Sprintf("%s; access %s a %d-byte object allocated at %#x%s",
		desc, where, objSize, allocPC, tag)
}

// Coverage returns the dynamic full-check coverage: the fraction of
// executed sites whose mode is ModeFull (paper Table 1, "coverage").
func (rt *Runtime) Coverage() float64 {
	var full, total int
	for i := range rt.Checks {
		if rt.Stats[i].Execs == 0 {
			continue
		}
		total += int(rt.Checks[i].Merged)
		if rt.Checks[i].Mode == ModeFull {
			full += int(rt.Checks[i].Merged)
		}
	}
	if total == 0 {
		return 0
	}
	return float64(full) / float64(total)
}
