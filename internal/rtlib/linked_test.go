package rtlib_test

import (
	"testing"

	"redfat/internal/asm"
	"redfat/internal/isa"
	"redfat/internal/redfat"
	"redfat/internal/relf"
	"redfat/internal/rtlib"
	"redfat/internal/vm"
)

// libBases places the shared object away from the executable's addresses
// (the rewriter's trampoline region included).
var libOpts = asm.Options{TextBase: 0x5000000, DataBase: 0x5200000}

// buildLib builds libvuln.so: an exported store_at(buf=rdi, idx=rsi)
// with no bounds check, plus a benign exported helper.
func buildLib(t *testing.T) *relf.Binary {
	t.Helper()
	b := asm.NewBuilder(libOpts)
	b.Func("lib_store_at")
	b.MovRI(isa.RCX, 0x41)
	b.StoreM(asm.MemBID(isa.RDI, isa.RSI, 8, 0), isa.RCX, 8)
	b.MovRI(isa.RAX, 0)
	b.Ret()
	b.Func("lib_double")
	b.MovRR(isa.RAX, isa.RDI)
	b.AluRR(isa.ADD, isa.RAX, isa.RDI)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// buildMain builds the executable: allocates a 40-byte array and calls
// lib_store_at(array, input).
func buildMain(t *testing.T) *relf.Binary {
	t.Helper()
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RDI, 40)
	b.CallImport("malloc")
	b.MovRR(isa.RBX, isa.RAX)
	b.MovRI(isa.RDI, 40)
	b.CallImport("malloc") // adjacent victim
	b.CallImport("rf_input")
	b.MovRR(isa.RSI, isa.RAX)
	b.MovRR(isa.RDI, isa.RBX)
	b.CallImport("lib_store_at")
	b.MovRI(isa.RDI, 21)
	b.CallImport("lib_double")
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

func TestCrossModuleCalls(t *testing.T) {
	lib := buildLib(t)
	main := buildMain(t)
	v, rts, err := rtlib.RunLinked(main, []*relf.Binary{lib},
		rtlib.RunConfig{Input: []uint64{2}})
	if err != nil {
		t.Fatal(err)
	}
	if v.ExitCode != 42 {
		t.Errorf("exit = %d, want 42 (lib_double(21))", v.ExitCode)
	}
	if len(rts) != 0 {
		t.Errorf("uninstrumented modules produced %d runtimes", len(rts))
	}
}

func TestUninstrumentedLibraryUnprotected(t *testing.T) {
	// Paper §7.4: if the main program is instrumented but a dependency
	// is not, only the former is protected. The overflow happens inside
	// the library, so it goes undetected.
	lib := buildLib(t)
	main := buildMain(t)
	hardMain, _, err := redfat.Harden(main, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	attackIdx := uint64(8) // next slot's payload: invisible to redzones too
	v, rts, err := rtlib.RunLinked(hardMain, []*relf.Binary{lib},
		rtlib.RunConfig{Input: []uint64{attackIdx}, Abort: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(v.Errors) != 0 {
		t.Errorf("error detected in uninstrumented library code: %v", v.Errors)
	}
	if len(rts) != 1 {
		t.Errorf("runtimes = %d, want 1 (main only)", len(rts))
	}
}

func TestSeparatelyInstrumentedLibraryProtected(t *testing.T) {
	// Instrumenting the library separately (the paper's recommended
	// workflow) catches the overflow inside it.
	lib := buildLib(t)
	main := buildMain(t)
	hardLib, libRep, err := redfat.Harden(lib, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if libRep.Checks == 0 {
		t.Fatal("library got no checks")
	}
	hardMain, _, err := redfat.Harden(main, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}

	// Benign index: clean run, identical result.
	v, rts, err := rtlib.RunLinked(hardMain, []*relf.Binary{hardLib},
		rtlib.RunConfig{Input: []uint64{2}, Abort: true})
	if err != nil || v.ExitCode != 42 {
		t.Fatalf("benign linked run: exit=%d err=%v", v.ExitCode, err)
	}
	if len(rts) != 2 {
		t.Fatalf("runtimes = %d, want 2", len(rts))
	}

	// Attack through the library: now detected.
	_, _, err = rtlib.RunLinked(hardMain, []*relf.Binary{hardLib},
		rtlib.RunConfig{Input: []uint64{8}, Abort: true})
	me, ok := err.(*vm.MemError)
	if !ok {
		t.Fatalf("library overflow not detected: %v", err)
	}
	if me.Kind != vm.ErrOOBWrite {
		t.Errorf("kind = %v", me.Kind)
	}
}

func TestUnresolvedCrossModuleImport(t *testing.T) {
	main := buildMain(t)
	_, _, err := rtlib.RunLinked(main, nil, rtlib.RunConfig{})
	if err == nil {
		t.Fatal("missing library import resolved from nowhere")
	}
}

func TestLibraryCallingLibc(t *testing.T) {
	// A library that itself allocates: its malloc import binds to the
	// process-wide (RedFat) allocator.
	b := asm.NewBuilder(libOpts)
	b.Func("lib_alloc_and_fill")
	b.Push(isa.RBX)
	b.MovRI(isa.RDI, 64)
	b.CallImport("malloc")
	b.MovRR(isa.RBX, isa.RAX)
	b.StoreI(isa.RBX, 0, 123, 8)
	b.Load(isa.RAX, isa.RBX, 0, 8)
	b.Pop(isa.RBX)
	b.Ret()
	lib, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	mb := asm.NewBuilder(asm.Options{})
	mb.Func("main")
	mb.CallImport("lib_alloc_and_fill")
	mb.Ret()
	main, err := mb.Build()
	if err != nil {
		t.Fatal(err)
	}
	hardLib, _, err := redfat.Harden(lib, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := rtlib.RunLinked(main, []*relf.Binary{hardLib},
		rtlib.RunConfig{Abort: true})
	if err != nil || v.ExitCode != 123 {
		t.Fatalf("exit=%d err=%v", v.ExitCode, err)
	}
}
