package rtlib

import (
	"encoding/binary"
	"fmt"

	"redfat/internal/isa"
	"redfat/internal/relf"
)

// CheckImport is the import name the rewriter adds for the instrumented
// check routine (the analogue of the libredfat check entry point).
const CheckImport = "__redfat_check"

// SitesSection is the metadata section carrying the check-site table.
const SitesSection = ".rf.sites"

// Mode selects the check variant instrumented at a site (paper §3-§5).
type Mode uint8

// Check modes.
const (
	// ModeRedzone is the conservative default: redzone-only protection,
	// computing the object base from the accessed address (base(LB)).
	ModeRedzone Mode = iota
	// ModeFull is the combined (Redzone)+(LowFat) check: the object base
	// is computed from the pointer (base(ptr)) when fat, falling back to
	// base(LB) otherwise (paper Fig. 4).
	ModeFull
	// ModeProfile is the profiling variant (paper Fig. 5 step 1): it
	// evaluates the LowFat component, records pass/fail per site, and
	// never aborts.
	ModeProfile
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeRedzone:
		return "redzone"
	case ModeFull:
		return "full"
	case ModeProfile:
		return "profile"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// Check is one instrumentation site: everything the runtime check routine
// needs, baked in by the rewriter (in the real system these constants are
// specialized into the trampoline assembly).
type Check struct {
	PC   uint64 // address of the original (first) access instruction
	Mode Mode

	// Operand is the memory operand being checked. For merged checks the
	// displacement is the minimum of the merged group.
	Operand isa.Mem

	// Len is the access length in bytes; for merged checks it covers the
	// span [minDisp, maxDisp+width).
	Len uint32

	Write bool // any constituent access writes

	// NoSizeCheck disables metadata hardening (the -size option).
	NoSizeCheck bool

	// Leader marks the first check of its trampoline: it carries the
	// register/flag save-restore cost. SavedRegs/SaveFlags reflect the
	// clobber specialization (paper §6, low-level optimizations).
	Leader    bool
	SavedRegs uint8
	SaveFlags bool

	// Merged counts how many original accesses this check covers (1 for
	// unmerged sites); kept for reporting.
	Merged uint16

	// RipNext holds the address of the instruction following the access
	// when the operand is RIP-relative (the rewriter bakes it in so the
	// check can reconstruct the absolute address).
	RipNext uint64
}

// EncodeSites serializes a site table into section data.
func EncodeSites(checks []Check) []byte {
	buf := make([]byte, 0, 8+len(checks)*40)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(checks)))
	for i := range checks {
		c := &checks[i]
		buf = binary.LittleEndian.AppendUint64(buf, c.PC)
		buf = append(buf, byte(c.Mode))
		var flags byte
		if c.Write {
			flags |= 1
		}
		if c.NoSizeCheck {
			flags |= 2
		}
		if c.Leader {
			flags |= 4
		}
		if c.SaveFlags {
			flags |= 8
		}
		buf = append(buf, flags)
		buf = append(buf, byte(c.Operand.Seg), byte(c.Operand.Base),
			byte(c.Operand.Index), c.Operand.Scale)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Operand.Disp))
		buf = binary.LittleEndian.AppendUint32(buf, c.Len)
		buf = append(buf, c.SavedRegs)
		buf = binary.LittleEndian.AppendUint16(buf, c.Merged)
		buf = append(buf, 0, 0, 0) // pad RipNext to offset 28
		buf = binary.LittleEndian.AppendUint64(buf, c.RipNext)
	}
	return buf
}

const siteRecordLen = 36

// DecodeSites parses a site table.
func DecodeSites(data []byte) ([]Check, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("rtlib: site table too short")
	}
	n := binary.LittleEndian.Uint64(data)
	if uint64(len(data)-8) < n*siteRecordLen {
		return nil, fmt.Errorf("rtlib: site table truncated (%d sites)", n)
	}
	checks := make([]Check, n)
	for i := uint64(0); i < n; i++ {
		rec := data[8+i*siteRecordLen:]
		c := &checks[i]
		c.PC = binary.LittleEndian.Uint64(rec)
		c.Mode = Mode(rec[8])
		flags := rec[9]
		c.Write = flags&1 != 0
		c.NoSizeCheck = flags&2 != 0
		c.Leader = flags&4 != 0
		c.SaveFlags = flags&8 != 0
		c.Operand = isa.Mem{
			Seg:   isa.Seg(rec[10]),
			Base:  isa.Reg(rec[11]),
			Index: isa.Reg(rec[12]),
			Scale: rec[13],
			Disp:  int32(binary.LittleEndian.Uint32(rec[14:])),
		}
		c.Len = binary.LittleEndian.Uint32(rec[18:])
		c.SavedRegs = rec[22]
		c.Merged = binary.LittleEndian.Uint16(rec[23:])
		c.RipNext = binary.LittleEndian.Uint64(rec[28:])
	}
	return checks, nil
}

// SitesFrom extracts the site table from a hardened binary.
func SitesFrom(bin *relf.Binary) ([]Check, error) {
	s := bin.Section(SitesSection)
	if s == nil {
		return nil, fmt.Errorf("rtlib: binary has no %s section", SitesSection)
	}
	return DecodeSites(s.Data)
}
