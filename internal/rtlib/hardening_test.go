package rtlib_test

import (
	"testing"

	"redfat/internal/asm"
	"redfat/internal/isa"
	"redfat/internal/redfat"
	"redfat/internal/relf"
	"redfat/internal/rtlib"
	"redfat/internal/vm"
)

// buildPokeLib builds an uninstrumented library exporting
// lib_poke(addr=rdi, val=rsi): an arbitrary unchecked store — the model
// of "a memory error in unprotected code, e.g., from an uninstrumented
// library" the paper's metadata hardening defends against (§4.2).
func buildPokeLib(t *testing.T) *relf.Binary {
	t.Helper()
	b := asm.NewBuilder(asm.Options{TextBase: 0x5000000, DataBase: 0x5200000})
	b.Func("lib_poke")
	b.Store(isa.RDI, 0, isa.RSI, 8)
	b.MovRI(isa.RAX, 0)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// buildMetaAttack: the main program allocates a 40-byte object, has the
// unprotected library overwrite the object's SIZE metadata with a huge
// value, then writes at offset 48 — past the slot's real extent, which
// the corrupted SIZE would otherwise allow.
func buildMetaAttack(t *testing.T) *relf.Binary {
	t.Helper()
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RDI, 40)
	b.CallImport("malloc")
	b.MovRR(isa.RBX, isa.RAX)
	b.MovRI(isa.RDI, 40)
	b.CallImport("malloc") // neighbour keeps the target mapped
	// lib_poke(obj − 16, 1 << 40): corrupt the stored SIZE.
	b.MovRR(isa.RDI, isa.RBX)
	b.AluRI(isa.SUB, isa.RDI, 16)
	b.MovRI(isa.RSI, 0)
	b.Emit(isa.Inst{Op: isa.MOVABS, Form: isa.FRI, Reg: isa.RSI, Imm: 1 << 40})
	b.CallImport("lib_poke")
	// The secondary overflow: store at obj+48 (inside the next slot).
	b.StoreI(isa.RBX, 48, 0x41, 8)
	b.MovRI(isa.RAX, 0)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

func TestMetadataHardeningDetectsCorruption(t *testing.T) {
	lib := buildPokeLib(t)
	main := buildMetaAttack(t)
	hard, _, err := redfat.Harden(main, redfat.Defaults()) // SizeCheck on
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = rtlib.RunLinked(hard, []*relf.Binary{lib},
		rtlib.RunConfig{Abort: true})
	me, ok := err.(*vm.MemError)
	if !ok {
		t.Fatalf("corrupted metadata not detected: %v", err)
	}
	if me.Kind != vm.ErrCorruptMeta {
		t.Errorf("kind = %v, want corrupted metadata", me.Kind)
	}
}

func TestNoSizeCheckMissesCorruption(t *testing.T) {
	// The -size configuration trades exactly this detection for speed
	// (paper §4.2 "Optional code").
	lib := buildPokeLib(t)
	main := buildMetaAttack(t)
	opt := redfat.Defaults()
	opt.SizeCheck = false
	hard, _, err := redfat.Harden(main, opt)
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := rtlib.RunLinked(hard, []*relf.Binary{lib},
		rtlib.RunConfig{Abort: true})
	if err != nil || len(v.Errors) != 0 {
		t.Errorf("-size run flagged the forged-SIZE overflow anyway: %v %v",
			err, v.Errors)
	}
}

func TestQuarantinePolicy(t *testing.T) {
	// A use-after-free separated from the free by an intervening
	// same-class allocation: with the quarantine the slot is still
	// marked free (detected); with the quarantine disabled the slot is
	// immediately reused and the dangling write silently lands in the
	// new object.
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RDI, 40)
	b.CallImport("malloc")
	b.MovRR(isa.RBX, isa.RAX) // victim
	b.MovRR(isa.RDI, isa.RAX)
	b.CallImport("free")
	b.MovRI(isa.RDI, 40)
	b.CallImport("malloc") // same class: reuses the slot if no quarantine
	b.MovRR(isa.R13, isa.RAX)
	b.StoreI(isa.RBX, 0, 0x42, 8) // dangling write
	b.MovRI(isa.RAX, 0)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	hard, _, err := redfat.Harden(bin, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}

	_, _, err = rtlib.RunHardened(hard, rtlib.RunConfig{Abort: true})
	if me, ok := err.(*vm.MemError); !ok || me.Kind != vm.ErrUseAfterFree {
		t.Errorf("quarantined UaF not detected: %v", err)
	}

	v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{
		Abort: true, QuarantineBytes: -1,
	})
	if err != nil || len(v.Errors) != 0 {
		t.Errorf("without quarantine the reused-slot write should be silent: %v %v",
			err, v.Errors)
	}
}

func TestRandomizedHeapStillCorrect(t *testing.T) {
	// Randomized placement must not change program results or break
	// detection.
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.R15, 0)
	b.MovRI(isa.R14, 0)
	b.Label("loop")
	b.MovRI(isa.RDI, 48)
	b.CallImport("malloc")
	b.MovRR(isa.RBX, isa.RAX)
	b.Store(isa.RBX, 0, isa.R14, 8)
	b.AluRM(isa.ADD, isa.R15, asm.MemBID(isa.RBX, isa.RegNone, 1, 0), 8)
	b.MovRR(isa.RDI, isa.RBX)
	b.CallImport("free")
	b.AluRI(isa.ADD, isa.R14, 1)
	b.AluRI(isa.CMP, isa.R14, 64)
	b.Jcc(isa.JL, "loop")
	b.MovRR(isa.RAX, isa.R15)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	hard, _, err := redfat.Harden(bin, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	plain, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{Abort: true})
	if err != nil {
		t.Fatal(err)
	}
	rnd, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{
		Abort: true, RandomizeHeap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain.ExitCode != rnd.ExitCode {
		t.Errorf("randomization changed the result: %d vs %d",
			plain.ExitCode, rnd.ExitCode)
	}
}
