package rtlib_test

import (
	"strings"
	"testing"

	"redfat/internal/asm"
	"redfat/internal/isa"
	"redfat/internal/redfat"
	"redfat/internal/relf"
	"redfat/internal/rtlib"
	"redfat/internal/vm"
)

// buildProg assembles a single-function program.
func buildProg(t *testing.T, emit func(b *asm.Builder)) *relf.Binary {
	t.Helper()
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	emit(b)
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

// hardenDefault hardens bin under the production configuration.
func hardenDefault(t *testing.T, bin *relf.Binary) *relf.Binary {
	t.Helper()
	hard, _, err := redfat.Harden(bin, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	return hard
}

func TestCallocOverflowReturnsNull(t *testing.T) {
	// calloc(1<<32, 1<<32): n*size wraps to 0. The classic CWE-190 libc
	// bug is to allocate the wrapped (tiny) size and let the caller
	// overflow it; the fixed calloc must return NULL instead.
	bin := buildProg(t, func(b *asm.Builder) {
		b.Emit(isa.Inst{Op: isa.MOVABS, Form: isa.FRI, Reg: isa.RDI, Imm: 1 << 32})
		b.Emit(isa.Inst{Op: isa.MOVABS, Form: isa.FRI, Reg: isa.RSI, Imm: 1 << 32})
		b.CallImport("calloc")
		b.AluRI(isa.CMP, isa.RAX, 0)
		b.Jcc(isa.JE, "null")
		b.MovRI(isa.RAX, 9) // got a pointer for 2^64 bytes: the bug
		b.Ret()
		b.Label("null")
		// A sane request must still work and come back zeroed.
		b.MovRI(isa.RDI, 8)
		b.MovRI(isa.RSI, 8)
		b.CallImport("calloc")
		b.AluRI(isa.CMP, isa.RAX, 0)
		b.Jcc(isa.JE, "oom")
		b.Load(isa.RDX, isa.RAX, 0, 8)
		b.AluRI(isa.CMP, isa.RDX, 0)
		b.Jcc(isa.JNE, "dirty")
		b.MovRI(isa.RAX, 7)
		b.Ret()
		b.Label("oom")
		b.MovRI(isa.RAX, 8)
		b.Ret()
		b.Label("dirty")
		b.MovRI(isa.RAX, 10)
		b.Ret()
	})
	v, err := rtlib.RunBaseline(bin, rtlib.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if v.ExitCode != 7 {
		t.Errorf("baseline calloc overflow: exit %d, want 7", v.ExitCode)
	}
	hv, _, err := rtlib.RunHardened(hardenDefault(t, bin), rtlib.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if hv.ExitCode != 7 {
		t.Errorf("hardened calloc overflow: exit %d, want 7", hv.ExitCode)
	}
}

// buildOverlapCopy builds: p = malloc(64), fill p[i]=i for i<48,
// fn(p+1, p, 32), then return sum of p[0..48) as the checksum.
func buildOverlapCopy(t *testing.T, fn string) *relf.Binary {
	return buildProg(t, func(b *asm.Builder) {
		b.MovRI(isa.RDI, 64)
		b.CallImport("malloc")
		b.MovRR(isa.RBX, isa.RAX)
		b.MovRI(isa.RCX, 0)
		b.Label("fill")
		b.StoreM(asm.MemBID(isa.RBX, isa.RCX, 1, 0), isa.RCX, 1)
		b.AluRI(isa.ADD, isa.RCX, 1)
		b.AluRI(isa.CMP, isa.RCX, 48)
		b.Jcc(isa.JL, "fill")
		b.MovRR(isa.RDI, isa.RBX)
		b.AluRI(isa.ADD, isa.RDI, 1) // dst = p+1
		b.MovRR(isa.RSI, isa.RBX)    // src = p
		b.MovRI(isa.RDX, 32)
		b.CallImport(fn)
		b.MovRI(isa.RAX, 0)
		b.MovRI(isa.RCX, 0)
		b.Label("sum")
		b.Emit(isa.Inst{Op: isa.MOVZX, Form: isa.FRM, Reg: isa.RDX, Size: 1,
			Mem: asm.MemBID(isa.RBX, isa.RCX, 1, 0)})
		b.AluRR(isa.ADD, isa.RAX, isa.RDX)
		b.AluRI(isa.ADD, isa.RCX, 1)
		b.AluRI(isa.CMP, isa.RCX, 48)
		b.Jcc(isa.JL, "sum")
		b.Ret()
	})
}

// overlapChecksum is the expected checksum after a *correct* overlapping
// forward move of 32 bytes from p to p+1: p[0]=0, p[1+i]=i for i<32,
// p[33..48) untouched.
func overlapChecksum() uint64 {
	buf := make([]byte, 48)
	for i := range buf {
		buf[i] = byte(i)
	}
	copy(buf[1:33], append([]byte(nil), buf[0:32]...))
	sum := uint64(0)
	for _, x := range buf {
		sum += uint64(x)
	}
	return sum
}

func TestMemmoveOverlapDefined(t *testing.T) {
	bin := buildOverlapCopy(t, "memmove")
	want := overlapChecksum()
	v, err := rtlib.RunBaseline(bin, rtlib.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if v.ExitCode != want {
		t.Errorf("baseline memmove overlap checksum %d, want %d", v.ExitCode, want)
	}
	hv, _, err := rtlib.RunHardened(hardenDefault(t, bin), rtlib.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if hv.ExitCode != want {
		t.Errorf("hardened memmove overlap checksum %d, want %d", hv.ExitCode, want)
	}
	if len(hv.Errors) != 0 {
		t.Errorf("overlapping memmove is defined; got %v", hv.Errors)
	}
}

func TestMemcpyOverlapReportedWhenHardened(t *testing.T) {
	bin := buildOverlapCopy(t, "memcpy")
	want := overlapChecksum()
	hv, _, err := rtlib.RunHardened(hardenDefault(t, bin), rtlib.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hv.Errors) != 1 || hv.Errors[0].Kind != vm.ErrOverlap {
		t.Fatalf("hardened memcpy overlap: errors %v, want one overlap report", hv.Errors)
	}
	// The hardened memcpy still performs a well-defined move, so the
	// program's result is deterministic alongside the report.
	if hv.ExitCode != want {
		t.Errorf("hardened memcpy overlap checksum %d, want %d", hv.ExitCode, want)
	}
	// With the span intrinsics off, the baseline binding stays silent
	// (real memcpy would silently produce direction-dependent garbage;
	// the model's bulk copy is forward, same as the checksum above).
	nv, _, err := rtlib.RunHardened(hardenDefault(t, bin), rtlib.RunConfig{NoLibcCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(nv.Errors) != 0 {
		t.Errorf("NoLibcCheck memcpy overlap still reported: %v", nv.Errors)
	}
}

func TestSpanUAFThroughLibcNeedsQuarantine(t *testing.T) {
	// memcpy from a freed object, with an intervening same-class
	// allocation: the quarantine keeps the slot free (span check reports
	// a use-after-free); without it the slot is reused and the stale
	// read silently hits the new object — the libc flavour of
	// TestQuarantinePolicy.
	bin := buildProg(t, func(b *asm.Builder) {
		b.MovRI(isa.RDI, 40)
		b.CallImport("malloc")
		b.MovRR(isa.RBX, isa.RAX) // victim
		b.MovRI(isa.RDI, 64)
		b.CallImport("malloc")
		b.MovRR(isa.R13, isa.RAX) // dst
		b.MovRR(isa.RDI, isa.RBX)
		b.CallImport("free")
		b.MovRI(isa.RDI, 40)
		b.CallImport("malloc") // same class: reuses the slot if no quarantine
		b.MovRR(isa.RDI, isa.R13)
		b.MovRR(isa.RSI, isa.RBX) // dangling source
		b.MovRI(isa.RDX, 16)
		b.CallImport("memcpy")
		b.MovRI(isa.RAX, 0)
		b.Ret()
	})
	hard := hardenDefault(t, bin)
	_, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{Abort: true})
	me, ok := err.(*vm.MemError)
	if !ok || me.Kind != vm.ErrUseAfterFree {
		t.Errorf("quarantined libc UaF not detected: %v", err)
	} else if !strings.Contains(me.Note, "memcpy source") {
		t.Errorf("detection note missing the operand: %q", me.Note)
	}
	v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{Abort: true, QuarantineBytes: -1})
	if err != nil || len(v.Errors) != 0 {
		t.Errorf("without quarantine the reused-slot read should be silent: %v %v", err, v.Errors)
	}
}

func TestSpanOOBDetectionShape(t *testing.T) {
	// memset past the end of a 40-byte object: the report must carry the
	// OOB-write kind, the first out-of-bounds byte as the fault address,
	// and the allocation-site note — the same shape per-access
	// detections have.
	bin := buildProg(t, func(b *asm.Builder) {
		b.MovRI(isa.RDI, 40)
		b.CallImport("malloc")
		b.MovRR(isa.RBX, isa.RAX)
		b.MovRR(isa.RDI, isa.RBX)
		b.MovRI(isa.RSI, 0x41)
		b.MovRI(isa.RDX, 72) // 32 bytes past the end
		b.CallImport("memset")
		b.MovRI(isa.RAX, 0)
		b.Ret()
	})
	hv, _, err := rtlib.RunHardened(hardenDefault(t, bin), rtlib.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hv.Errors) != 1 {
		t.Fatalf("errors = %v, want one OOB write", hv.Errors)
	}
	e := hv.Errors[0]
	if e.Kind != vm.ErrOOBWrite {
		t.Errorf("kind = %v, want OOB write", e.Kind)
	}
	if e.Component != "lowfat" {
		t.Errorf("component = %q, want lowfat", e.Component)
	}
	if !strings.Contains(e.Note, "memset destination") ||
		!strings.Contains(e.Note, "past the end of a 40-byte object allocated at") {
		t.Errorf("note = %q, want span-check allocation-site note", e.Note)
	}
	if e.PC == 0 || e.Addr == 0 {
		t.Errorf("missing PC/fault address: %+v", e)
	}
}

// buildSmashThenOp: main mallocs 40 bytes (64-byte slot: 8 slack bytes at
// obj+40), has the unprotected library overwrite the slack, then runs op.
func buildSmashThenOp(t *testing.T, op func(b *asm.Builder)) *relf.Binary {
	t.Helper()
	b := asm.NewBuilder(asm.Options{})
	b.Func("main")
	b.MovRI(isa.RDI, 40)
	b.CallImport("malloc")
	b.MovRR(isa.RBX, isa.RAX)
	// lib_poke(obj+40, garbage): one unchecked 8-byte store into slack.
	b.MovRR(isa.RDI, isa.RBX)
	b.AluRI(isa.ADD, isa.RDI, 40)
	b.MovRI(isa.RSI, 0x1BADD00D)
	b.CallImport("lib_poke")
	op(b)
	b.MovRI(isa.RAX, 0)
	b.Ret()
	bin, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return bin
}

func TestCanarySmashDetectedOnFree(t *testing.T) {
	lib := buildPokeLib(t)
	bin := buildSmashThenOp(t, func(b *asm.Builder) {
		b.MovRR(isa.RDI, isa.RBX)
		b.CallImport("free")
	})
	hard := hardenDefault(t, bin)
	_, _, err := rtlib.RunLinked(hard, []*relf.Binary{lib},
		rtlib.RunConfig{Abort: true, Canary: true})
	me, ok := err.(*vm.MemError)
	if !ok || me.Kind != vm.ErrCorruptMeta {
		t.Fatalf("smashed canary not detected on free: %v", err)
	}
	if me.Component != "redzone" {
		t.Errorf("component = %q, want redzone", me.Component)
	}
	// With the mode off the smash is invisible (the slack is dead bytes).
	v, _, err := rtlib.RunLinked(hard, []*relf.Binary{lib}, rtlib.RunConfig{Abort: true})
	if err != nil || len(v.Errors) != 0 {
		t.Errorf("canary off: smash should be silent: %v %v", err, v.Errors)
	}
}

func TestCanarySmashDetectedOnSpanCrossing(t *testing.T) {
	// No free: an in-bounds memset over the object triggers the span
	// check, whose canary verification notices the smashed slack.
	lib := buildPokeLib(t)
	bin := buildSmashThenOp(t, func(b *asm.Builder) {
		b.MovRR(isa.RDI, isa.RBX)
		b.MovRI(isa.RSI, 0)
		b.MovRI(isa.RDX, 40)
		b.CallImport("memset")
	})
	hard := hardenDefault(t, bin)
	v, _, err := rtlib.RunLinked(hard, []*relf.Binary{lib}, rtlib.RunConfig{Canary: true})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range v.Errors {
		if e.Kind == vm.ErrCorruptMeta && strings.Contains(e.Note, "canary smashed") {
			found = true
		}
	}
	if !found {
		t.Errorf("span crossing missed the smashed canary: %v", v.Errors)
	}
}

func TestUnderAllocSelfTestDeterministic(t *testing.T) {
	// REDFAT_TEST mode: with UnderAllocEvery=1 every allocation records
	// SIZE one byte short, so touching the last requested byte becomes a
	// detection tagged as self-test. Randomness comes from vm.NextRand,
	// so two runs are bit-identical.
	bin := buildProg(t, func(b *asm.Builder) {
		b.MovRI(isa.RDI, 40)
		b.CallImport("malloc")
		b.MovRR(isa.RBX, isa.RAX)
		b.MovRR(isa.RDI, isa.RBX)
		b.MovRI(isa.RSI, 0x55)
		b.MovRI(isa.RDX, 40) // full requested size: last byte under-allocated
		b.CallImport("memset")
		b.MovRI(isa.RAX, 0)
		b.Ret()
	})
	hard := hardenDefault(t, bin)
	run := func() *vm.VM {
		v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{UnderAllocEvery: 1})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	a, b := run(), run()
	if len(a.Errors) == 0 {
		t.Fatal("under-allocation self-test induced no detection")
	}
	for _, e := range a.Errors {
		if !strings.Contains(e.Note, "self-test under-allocation") {
			t.Errorf("induced detection lacks the self-test tag: %q", e.Note)
		}
	}
	if a.Cycles != b.Cycles || len(a.Errors) != len(b.Errors) {
		t.Errorf("self-test mode not deterministic: %d/%d cycles, %d/%d errors",
			a.Cycles, b.Cycles, len(a.Errors), len(b.Errors))
	}
	// Mode off: the same program is clean.
	v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{})
	if err != nil || len(v.Errors) != 0 {
		t.Errorf("mode off: %v %v", err, v.Errors)
	}
}

func TestNoLibcCheckIdentityWithSeedBindings(t *testing.T) {
	// With NoLibcCheck and all allocator modes off, a hardened run must
	// be bit-identical (cycles, exit, detections) to the pre-intrinsic
	// seed behaviour — which the baseline bindings preserve. The twin
	// program uses every wrapped routine in bounds.
	bin := buildProg(t, func(b *asm.Builder) {
		b.MovRI(isa.RDI, 64)
		b.CallImport("malloc")
		b.MovRR(isa.RBX, isa.RAX)
		b.MovRI(isa.RDI, 64)
		b.CallImport("malloc")
		b.MovRR(isa.R13, isa.RAX)
		b.MovRR(isa.RDI, isa.RBX)
		b.MovRI(isa.RSI, 0x21)
		b.MovRI(isa.RDX, 63)
		b.CallImport("memset")
		b.StoreI(isa.RBX, 63, 0, 1)
		b.MovRR(isa.RDI, isa.R13)
		b.MovRR(isa.RSI, isa.RBX)
		b.CallImport("strcpy")
		b.MovRR(isa.RDI, isa.R13)
		b.CallImport("strlen")
		b.MovRR(isa.R14, isa.RAX)
		b.MovRR(isa.RDI, isa.RBX)
		b.MovRR(isa.RSI, isa.R13)
		b.CallImport("strcmp")
		b.AluRR(isa.ADD, isa.R14, isa.RAX)
		b.MovRR(isa.RDI, isa.RBX)
		b.CallImport("free")
		b.MovRR(isa.RDI, isa.R13)
		b.CallImport("free")
		b.MovRR(isa.RAX, isa.R14)
		b.Ret()
	})
	hard := hardenDefault(t, bin)
	on, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	off, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{NoLibcCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if on.ExitCode != off.ExitCode {
		t.Errorf("exit differs: checks on %d, off %d", on.ExitCode, off.ExitCode)
	}
	if len(on.Errors) != 0 || len(off.Errors) != 0 {
		t.Errorf("in-bounds program reported: on=%v off=%v", on.Errors, off.Errors)
	}
	// The knob is guest-visible: span checks charge cycles, so the two
	// runs must differ — and each must be individually deterministic.
	if on.Cycles == off.Cycles {
		t.Errorf("span checks charged no cycles (both %d); knob is not guest-visible", on.Cycles)
	}
	off2, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{NoLibcCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if off2.Cycles != off.Cycles {
		t.Errorf("NoLibcCheck runs diverge: %d vs %d cycles", off.Cycles, off2.Cycles)
	}
}
