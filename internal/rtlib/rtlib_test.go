package rtlib

import (
	"math/rand"
	"testing"
	"testing/quick"

	"redfat/internal/isa"
	"redfat/internal/relf"
)

func TestSitesRoundTrip(t *testing.T) {
	checks := []Check{
		{
			PC: 0x400123, Mode: ModeFull,
			Operand: isa.Mem{Seg: isa.SegGS, Base: isa.RBX, Index: isa.RCX,
				Scale: 8, Disp: -64},
			Len: 24, Write: true, Leader: true, SavedRegs: 3, SaveFlags: true,
			Merged: 3,
		},
		{
			PC: 0x400200, Mode: ModeRedzone,
			Operand: isa.Mem{Base: isa.RegNone, Index: isa.RegNone, Scale: 1,
				Disp: 0x601000},
			Len: 8, NoSizeCheck: true, Merged: 1,
		},
		{
			PC: 0x400300, Mode: ModeProfile,
			Operand: isa.Mem{Base: isa.RIP, Index: isa.RegNone, Scale: 1, Disp: 0x2000},
			Len:     4, Merged: 1, RipNext: 0x400308,
		},
	}
	data := EncodeSites(checks)
	got, err := DecodeSites(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(checks) {
		t.Fatalf("count = %d", len(got))
	}
	for i := range checks {
		if got[i] != checks[i] {
			t.Errorf("check %d: %+v != %+v", i, got[i], checks[i])
		}
	}
}

func TestQuickSitesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	regs := []isa.Reg{isa.RAX, isa.RBX, isa.RSP, isa.R15, isa.RegNone, isa.RIP}
	f := func() bool {
		c := Check{
			PC:   r.Uint64(),
			Mode: Mode(r.Intn(3)),
			Operand: isa.Mem{
				Seg:   isa.Seg(r.Intn(3)),
				Base:  regs[r.Intn(len(regs))],
				Index: regs[r.Intn(4)],
				Scale: 1 << r.Intn(4),
				Disp:  int32(r.Uint32()),
			},
			Len:         uint32(r.Intn(1 << 16)),
			Write:       r.Intn(2) == 0,
			NoSizeCheck: r.Intn(2) == 0,
			Leader:      r.Intn(2) == 0,
			SaveFlags:   r.Intn(2) == 0,
			SavedRegs:   uint8(r.Intn(5)),
			Merged:      uint16(1 + r.Intn(8)),
			RipNext:     r.Uint64(),
		}
		got, err := DecodeSites(EncodeSites([]Check{c}))
		if err != nil {
			t.Fatal(err)
		}
		return got[0] == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeSitesErrors(t *testing.T) {
	if _, err := DecodeSites(nil); err == nil {
		t.Error("nil data accepted")
	}
	data := EncodeSites([]Check{{PC: 1, Merged: 1}})
	if _, err := DecodeSites(data[:len(data)-4]); err == nil {
		t.Error("truncated table accepted")
	}
}

func TestSitesFromBinary(t *testing.T) {
	bin := &relf.Binary{}
	if _, err := SitesFrom(bin); err == nil {
		t.Error("binary without site table accepted")
	}
	bin.AddSection(&relf.Section{Name: SitesSection, Kind: relf.SecMeta,
		Data: EncodeSites([]Check{{PC: 9, Merged: 1}})})
	checks, err := SitesFrom(bin)
	if err != nil || len(checks) != 1 || checks[0].PC != 9 {
		t.Errorf("SitesFrom = %v, %v", checks, err)
	}
}

func TestCheckCostModel(t *testing.T) {
	full := &Check{Mode: ModeFull, Leader: true, SavedRegs: 4, SaveFlags: true}
	rz := &Check{Mode: ModeRedzone, Leader: true, SavedRegs: 4, SaveFlags: true}
	nosize := &Check{Mode: ModeFull, Leader: true, SavedRegs: 4, SaveFlags: true,
		NoSizeCheck: true}
	follower := &Check{Mode: ModeFull} // non-leader: no save cost

	cFull := checkCost(full, true, false)
	cRz := checkCost(rz, false, true)
	cNoSize := checkCost(nosize, true, false)
	cFollower := checkCost(follower, true, false)

	if cNoSize >= cFull {
		t.Errorf("-size did not reduce cost: %d vs %d", cNoSize, cFull)
	}
	if cFollower >= cFull {
		t.Errorf("batched follower not cheaper than leader: %d vs %d", cFollower, cFull)
	}
	if cRz > cFull {
		t.Errorf("redzone-only costs more than full: %d vs %d", cRz, cFull)
	}
	// Non-fat early exit is the cheapest full-check path.
	cEarly := checkCost(full, false, false)
	if cEarly >= cFull {
		t.Errorf("non-fat early exit not cheaper: %d vs %d", cEarly, cFull)
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeRedzone: "redzone", ModeFull: "full", ModeProfile: "profile",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
}
