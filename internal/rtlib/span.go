package rtlib

// Hardened libc span intrinsics (libredfat interposition model).
//
// The real libredfat replaces memcpy/memset/str* with versions that
// resolve the low-fat allocation once and validate the whole [p, p+n)
// operand in O(1), instead of paying one instrumented check per byte.
// SpanLibC models that: every intrinsic span-checks each operand against
// the redzone heap's object metadata, charges the O(1) check cost plus
// the usual per-byte copy cost, then performs the operation through the
// mem bulk accessors. Detections carry the same MemError shape as the
// per-access fastcheck path (kind, first out-of-bounds byte, PC,
// allocation-site note) so Table 2 rows are directly comparable.

import (
	"fmt"

	"redfat/internal/isa"
	"redfat/internal/lowfat"
	"redfat/internal/mem"
	"redfat/internal/redzone"
	"redfat/internal/vm"
)

// checkSpan validates the whole operand [ptr, ptr+n) against the object
// containing ptr, resolving base and size exactly once. op names the
// intrinsic and operand for the forensic note ("memcpy source"). A nil
// return means the span is in bounds (or the pointer is not heap-managed,
// which span checks — like the per-access fallback path — must permit).
// Zero-length spans are vacuously fine and charge nothing: a pointer one
// past the end of an object is legal as long as it is never dereferenced.
func checkSpan(v *vm.VM, h *redzone.Heap, op string, ptr, n uint64, write bool) error {
	if n == 0 {
		return nil
	}
	v.CountLibcSpanCheck()
	base := lowfat.Base(ptr)
	if base == 0 {
		// Non-fat pointer (globals, stack, legacy region): not ours to
		// police, same verdict the per-access checker reaches after its
		// base(LB) fallback.
		v.Cycles += costSpanCheckNonFat
		return nil
	}
	v.Cycles += costSpanCheckFat
	lb, ub := ptr, ptr+n

	size, err := h.Mem.Load(base, redzone.Size>>1)
	wild := false
	if err != nil {
		// Reserved-but-unmapped slot memory: treat as a freed/never
		// allocated object, like the per-access path does.
		size, wild = 0, true
	}

	kind := vm.ErrOOBRead
	if write {
		kind = vm.ErrOOBWrite
	}
	fault := uint64(0)
	switch {
	case lowfat.Size(base) != lowfat.SizeMax && size > lowfat.Size(base)-redzone.Size:
		kind = vm.ErrCorruptMeta
		fault = base
	case size == 0:
		if !wild {
			kind = vm.ErrUseAfterFree
		}
		fault = lb
	case lb < base+redzone.Size:
		fault = lb
	case ub > base+redzone.Size+size:
		fault = base + redzone.Size + size
		if lb > fault {
			fault = lb
		}
	default:
		// Span fully inside the live object. Canary mode additionally
		// verifies the slack bytes the span borders were not smashed.
		if smash, ok := h.CheckCanary(base); !ok {
			v.CountLibcSpanFail()
			if aerr := v.Report(vm.MemError{
				Kind:      vm.ErrCorruptMeta,
				Addr:      smash,
				PC:        v.RIP,
				Component: "redzone",
				Note:      fmt.Sprintf("span check at %s: canary smashed at %#x", op, smash),
			}); aerr != nil {
				return aerr
			}
		}
		return nil
	}

	v.CountLibcSpanFail()
	if aerr := v.Report(vm.MemError{
		Kind:      kind,
		Addr:      fault,
		PC:        v.RIP,
		Component: "lowfat",
		Note:      describeSpan(h, op, base, size, fault),
	}); aerr != nil {
		// Abort mode: the detection is fatal, exactly like a failed
		// per-access check. Propagate so the run terminates here.
		return aerr
	}
	return errSpan
}

// errSpan is a sentinel telling the intrinsic the span failed; the
// MemError was already reported. Any other non-nil checkSpan error is the
// fatal abort-mode detection and must propagate out of the binding.
var errSpan = fmt.Errorf("rtlib: span check failed")

// spanAbort reports whether a checkSpan/spanStrlen error is the fatal
// abort-mode detection (as opposed to the handled errSpan sentinel).
func spanAbort(err error) bool { return err != nil && err != errSpan }

// describeSpan builds the allocation-site note for a span-check
// detection, mirroring Runtime.describe for per-access checks.
func describeSpan(h *redzone.Heap, op string, base, size, addr uint64) string {
	id, err := h.Mem.Load(base+8, 8)
	if err != nil || id == 0 {
		return fmt.Sprintf("span check at %s", op)
	}
	allocPC, objSize, freePC, ok := h.SiteOf(id)
	if !ok {
		return fmt.Sprintf("span check at %s", op)
	}
	tag := ""
	if h.UnderAllocated(id) {
		tag = " (self-test under-allocation)"
	}
	if size == 0 {
		return fmt.Sprintf("span check at %s; access to a %d-byte object freed at %#x (allocated at %#x)%s",
			op, objSize, freePC, allocPC, tag)
	}
	if addr >= base+redzone.Size+size {
		return fmt.Sprintf("span check at %s; access %d bytes past the end of a %d-byte object allocated at %#x%s",
			op, addr-(base+redzone.Size+size)+1, objSize, allocPC, tag)
	}
	return fmt.Sprintf("span check at %s; access %d bytes before the start of a %d-byte object allocated at %#x%s",
		op, base+redzone.Size-addr, objSize, allocPC, tag)
}

// spanStrlen measures the string at s with span awareness: the scan
// limit is clamped to the end of the containing live object, so a
// missing terminator is detected at the object boundary instead of
// walking into neighbouring slots. Returns the length and nil when the
// caller should proceed; errSpan after a reported (non-fatal) detection
// or when the measurement needs the baseline fallback; any other error
// is the fatal abort-mode detection.
func spanStrlen(v *vm.VM, h *redzone.Heap, op string, s uint64) (uint64, error) {
	if err := checkSpan(v, h, op, s, 1, false); err != nil {
		return 0, err
	}
	limit := uint64(strMax)
	clamped := false
	if base := lowfat.Base(s); base != 0 {
		if size, err := h.Mem.Load(base, redzone.Size>>1); err == nil && size > 0 &&
			s >= base+redzone.Size && s < base+redzone.Size+size {
			if room := base + redzone.Size + size - s; room < limit {
				limit, clamped = room, true
			}
		}
	}
	n, err := strlenAt(h.Mem, s, limit)
	if err == nil {
		return n, nil
	}
	if !clamped {
		// Hard error (unterminated beyond strMax, or unmapped memory):
		// surface like the baseline strlen does, via the caller.
		return n, errSpan
	}
	// The string runs to the end of its object without a terminator: the
	// byte-wise libc would read past the end, so report it as an OOB read
	// at the first out-of-bounds byte.
	base := lowfat.Base(s)
	size, _ := h.Mem.Load(base, redzone.Size>>1)
	fault := base + redzone.Size + size
	v.CountLibcSpanFail()
	if aerr := v.Report(vm.MemError{
		Kind:      vm.ErrOOBRead,
		Addr:      fault,
		PC:        v.RIP,
		Component: "lowfat",
		Note:      describeSpan(h, op, base, size, fault),
	}); aerr != nil {
		return n, aerr
	}
	return n, errSpan
}

// SpanLibC returns hardened overrides for the span-operating libc
// bindings. Merge it over LibC's baseline bindings when libc span
// checking is enabled (the NoLibcCheck knob skips the merge).
func SpanLibC(h *redzone.Heap, m *mem.Memory) vm.Bindings {
	b := vm.Bindings{}

	b["memset"] = func(v *vm.VM, _ uint32) error {
		dst, c, n := v.Regs[isa.RDI], v.Regs[isa.RSI], v.Regs[isa.RDX]
		err := checkSpan(v, h, "memset destination", dst, n, true)
		if spanAbort(err) {
			return err
		}
		v.Cycles += 20 + n/8*costPerByte8
		if err != nil {
			v.Regs[isa.RAX] = dst
			return nil
		}
		if err := m.Memset(dst, byte(c), n); err != nil {
			return fmt.Errorf("memset(%#x, %d, %d): %w", dst, c, n, err)
		}
		v.Regs[isa.RAX] = dst
		return nil
	}

	b["memcpy"] = func(v *vm.VM, _ uint32) error {
		dst, src, n := v.Regs[isa.RDI], v.Regs[isa.RSI], v.Regs[isa.RDX]
		srcErr := checkSpan(v, h, "memcpy source", src, n, false)
		if spanAbort(srcErr) {
			return srcErr
		}
		dstErr := checkSpan(v, h, "memcpy destination", dst, n, true)
		if spanAbort(dstErr) {
			return dstErr
		}
		if n != 0 && dst != src {
			d := dst - src
			if src > dst {
				d = src - dst
			}
			if d < n {
				// The real memcpy's behaviour is undefined here; the
				// hardened one reports it instead of silently producing
				// direction-dependent garbage.
				v.CountLibcSpanFail()
				if aerr := v.Report(vm.MemError{
					Kind: vm.ErrOverlap,
					Addr: dst,
					PC:   v.RIP,
					Note: fmt.Sprintf("memcpy ranges [%#x,+%d) and [%#x,+%d) overlap; use memmove", dst, n, src, n),
				}); aerr != nil {
					return aerr
				}
			}
		}
		v.Cycles += 20 + n/8*costPerByte8
		if srcErr != nil || dstErr != nil {
			v.Regs[isa.RAX] = dst
			return nil
		}
		if err := memmoveBytes(m, dst, src, n); err != nil {
			return fmt.Errorf("memcpy(%#x, %#x, %d): %w", dst, src, n, err)
		}
		v.Regs[isa.RAX] = dst
		return nil
	}

	b["memmove"] = func(v *vm.VM, _ uint32) error {
		dst, src, n := v.Regs[isa.RDI], v.Regs[isa.RSI], v.Regs[isa.RDX]
		srcErr := checkSpan(v, h, "memmove source", src, n, false)
		if spanAbort(srcErr) {
			return srcErr
		}
		dstErr := checkSpan(v, h, "memmove destination", dst, n, true)
		if spanAbort(dstErr) {
			return dstErr
		}
		v.Cycles += 20 + n/8*costPerByte8
		if srcErr != nil || dstErr != nil {
			v.Regs[isa.RAX] = dst
			return nil
		}
		if err := memmoveBytes(m, dst, src, n); err != nil {
			return fmt.Errorf("memmove(%#x, %#x, %d): %w", dst, src, n, err)
		}
		v.Regs[isa.RAX] = dst
		return nil
	}

	b["memcmp"] = func(v *vm.VM, _ uint32) error {
		s1, s2, n := v.Regs[isa.RDI], v.Regs[isa.RSI], v.Regs[isa.RDX]
		e1 := checkSpan(v, h, "memcmp operand 1", s1, n, false)
		if spanAbort(e1) {
			return e1
		}
		e2 := checkSpan(v, h, "memcmp operand 2", s2, n, false)
		if spanAbort(e2) {
			return e2
		}
		if e1 != nil || e2 != nil {
			v.Cycles += 20
			v.Regs[isa.RAX] = 0
			return nil
		}
		compared, res, err := memcmpBytes(m, s1, s2, n)
		v.Cycles += 20 + compared/8*costPerByte8
		if err != nil {
			return fmt.Errorf("memcmp(%#x, %#x, %d): %w", s1, s2, n, err)
		}
		v.Regs[isa.RAX] = uint64(res)
		return nil
	}

	b["strlen"] = func(v *vm.VM, _ uint32) error {
		s := v.Regs[isa.RDI]
		n, serr := spanStrlen(v, h, "strlen operand", s)
		if spanAbort(serr) {
			return serr
		}
		if serr != nil {
			// Re-measure without the object clamp so the modelled
			// behaviour (length found past the redzone, or a hard
			// unterminated-string error) matches the baseline binding
			// when the run continues past the detection.
			full, err := strlenAt(m, s, strMax)
			if err != nil {
				return fmt.Errorf("strlen(%#x): %w", s, err)
			}
			n = full
		}
		v.Cycles += 10 + n
		v.Regs[isa.RAX] = n
		return nil
	}

	b["strcpy"] = func(v *vm.VM, _ uint32) error {
		dst, src := v.Regs[isa.RDI], v.Regs[isa.RSI]
		n, serr := spanStrlen(v, h, "strcpy source", src)
		if spanAbort(serr) {
			return serr
		}
		v.Cycles += 10 + n
		if serr != nil {
			v.Regs[isa.RAX] = dst
			return nil
		}
		if err := checkSpan(v, h, "strcpy destination", dst, n+1, true); err != nil {
			if spanAbort(err) {
				return err
			}
			v.Regs[isa.RAX] = dst
			return nil
		}
		if err := memmoveBytes(m, dst, src, n+1); err != nil {
			return fmt.Errorf("strcpy(%#x, %#x): %w", dst, src, err)
		}
		v.Regs[isa.RAX] = dst
		return nil
	}

	b["strcat"] = func(v *vm.VM, _ uint32) error {
		dst, src := v.Regs[isa.RDI], v.Regs[isa.RSI]
		dlen, derr := spanStrlen(v, h, "strcat destination", dst)
		if spanAbort(derr) {
			return derr
		}
		slen, serr := spanStrlen(v, h, "strcat source", src)
		if spanAbort(serr) {
			return serr
		}
		v.Cycles += 10 + dlen + slen
		if derr != nil || serr != nil {
			v.Regs[isa.RAX] = dst
			return nil
		}
		if err := checkSpan(v, h, "strcat destination", dst, dlen+slen+1, true); err != nil {
			if spanAbort(err) {
				return err
			}
			v.Regs[isa.RAX] = dst
			return nil
		}
		if err := memmoveBytes(m, dst+dlen, src, slen+1); err != nil {
			return fmt.Errorf("strcat(%#x, %#x): %w", dst, src, err)
		}
		v.Regs[isa.RAX] = dst
		return nil
	}

	b["strcmp"] = func(v *vm.VM, _ uint32) error {
		s1, s2 := v.Regs[isa.RDI], v.Regs[isa.RSI]
		_, e1 := spanStrlen(v, h, "strcmp operand 1", s1)
		if spanAbort(e1) {
			return e1
		}
		_, e2 := spanStrlen(v, h, "strcmp operand 2", s2)
		if spanAbort(e2) {
			return e2
		}
		if e1 != nil || e2 != nil {
			v.Cycles += 10
			v.Regs[isa.RAX] = 0
			return nil
		}
		compared, res, err := strcmpBytes(m, s1, s2)
		v.Cycles += 10 + compared
		if err != nil {
			return fmt.Errorf("strcmp(%#x, %#x): %w", s1, s2, err)
		}
		v.Regs[isa.RAX] = uint64(res)
		return nil
	}

	return b
}
