package rtlib

// Fused check plans for the VM's superblock tier.
//
// The interpreter reaches a check through the RTCALL binding (Bindings →
// handle). The superblock compiler instead asks VM.InlineCheck for a
// declarative plan of the site so the check can stay on-trace as a fused
// closure: the plan's address fields (copied from the precompiled
// checkFast) form the elision key, MaxCost feeds the trace's worst-case
// budget guard, and the two closures back the two execution shapes — a
// leading site runs execSite (the full Fig. 4 check, publishing its
// outcome), an elided follower runs forwardSite (the leader's verdict
// replayed with the follower's own stats, cycles and report). Guest
// cycle accounting and verdicts are bit-identical to the trampoline
// path; only host-side dispatch differs.

import (
	"redfat/internal/relf"
	"redfat/internal/vm"
)

// jitPlan builds the fusable plan for one site.
func (rt *Runtime) jitPlan(arg uint32) *vm.JITCheck {
	cf := &rt.fast[arg]
	p := &vm.JITCheck{
		BaseReg:   cf.baseReg,
		IndexReg:  cf.indexReg,
		Scale:     cf.scale,
		Seg:       cf.seg,
		StaticOff: cf.staticOff,
		Length:    cf.length,
		TryLowFat: cf.tryLowFat,
		SizeCheck: cf.sizeCheck,
		Profile:   cf.profile,
	}
	for _, cost := range cf.costs {
		if cost > p.MaxCost {
			p.MaxCost = cost
		}
	}
	p.Exec = func(v *vm.VM, o *vm.CheckOutcome) error { return rt.execSite(v, arg, o) }
	p.Forward = func(v *vm.VM, o *vm.CheckOutcome) error { return rt.forwardSite(v, arg, o) }
	return p
}

// InstallInlineChecks points v.InlineCheck at the module→runtime binding
// so the superblock tier can fuse instrumented checks. An RTCALL
// resolves to a plan only when its pc falls in an instrumented module,
// the import slot is the check binding, and the argument is a valid site
// index; anything else (allocator calls, corrupt site indices) returns
// nil and the trace ends there, leaving the interpreter to raise exactly
// the error it would have raised anyway.
func InstallInlineChecks(v *vm.VM, mods map[*relf.Binary]*Runtime) {
	if len(mods) == 0 {
		return
	}
	v.InlineCheck = func(v *vm.VM, pc uint64, importIdx int, arg uint32) *vm.JITCheck {
		bin := v.ModuleBinary(pc)
		if bin == nil {
			return nil
		}
		rt := mods[bin]
		if rt == nil {
			return nil
		}
		if importIdx < 0 || importIdx >= len(bin.Imports) || bin.Imports[importIdx] != CheckImport {
			return nil
		}
		if int(arg) >= len(rt.Checks) {
			return nil
		}
		return rt.jitPlan(arg)
	}
}
