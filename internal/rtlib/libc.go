// Package rtlib implements the runtime libraries that RF64 programs call
// through RTCALL:
//
//   - a modelled libc (malloc/free/memset/memcpy/string and simple I/O),
//     bound to either the baseline glibc-style allocator or the RedFat
//     redzone/low-fat allocator — the simulation of LD_PRELOAD
//     interposition (paper §2.1);
//   - libredfat: the instrumented memory-error checks of paper Fig. 4 in
//     all their variants, with an explicit cycle-cost model (cost.go).
package rtlib

import (
	"encoding/binary"
	"fmt"

	"redfat/internal/isa"
	"redfat/internal/mem"
	"redfat/internal/telemetry"
	"redfat/internal/vm"
)

// Allocator is the malloc-family interface; both the baseline heap
// (internal/heap) and the RedFat heap (internal/redzone) satisfy it.
type Allocator interface {
	Malloc(size uint64) (uint64, error)
	Calloc(n, size uint64) (uint64, error)
	Free(ptr uint64) error
	Realloc(ptr, size uint64) (uint64, error)
}

// Cycle costs of modelled library calls. A call's cost approximates the
// instruction count of a real implementation; size-dependent costs scale
// with the bytes touched.
const (
	costMallocCall = 80
	costFreeCall   = 50
	costPerByte8   = 1 // per 8 bytes for memset/memcpy-style loops
	costIOCall     = 30
)

// pcNoter is implemented by allocators that record guest allocation
// sites for diagnostics (both heaps).
type pcNoter interface{ NoteAllocPC(pc uint64) }

// stackNoter is additionally implemented by allocators that want a guest
// backtrace per allocator call when forensics is enabled. SiteStackDepth
// returns 0 when capture is off, so the frame walk is skipped entirely.
type stackNoter interface {
	NoteAllocStack(stack []uint64)
	SiteStackDepth() int
}

// LibC builds the libc bindings over the given allocator and memory.
// The same function serves baseline and hardened runs; only the allocator
// differs, exactly as with LD_PRELOAD.
func LibC(a Allocator, m *mem.Memory) vm.Bindings {
	b := vm.Bindings{}
	notePC := func(v *vm.VM) {
		if n, ok := a.(pcNoter); ok {
			n.NoteAllocPC(v.RIP)
		}
		if n, ok := a.(stackNoter); ok {
			if depth := n.SiteStackDepth(); depth > 0 {
				n.NoteAllocStack(v.Backtrace(depth))
			}
		}
	}

	b["malloc"] = func(v *vm.VM, _ uint32) error {
		notePC(v)
		v.Cycles += costMallocCall
		p, err := a.Malloc(v.Regs[isa.RDI])
		if err != nil {
			// Out-of-memory returns NULL; allocator-integrity errors
			// (invalid free etc.) do not arise in malloc.
			v.Regs[isa.RAX] = 0
			return nil
		}
		v.Tracer.RecordAt(telemetry.EvAlloc, v.RIP, p, v.Regs[isa.RDI], v.Cycles)
		v.Regs[isa.RAX] = p
		return nil
	}
	b["calloc"] = func(v *vm.VM, _ uint32) error {
		notePC(v)
		n, size := v.Regs[isa.RDI], v.Regs[isa.RSI]
		v.Cycles += costMallocCall + n*size/8*costPerByte8
		p, err := a.Calloc(n, size)
		if err != nil {
			v.Regs[isa.RAX] = 0
			return nil
		}
		v.Tracer.RecordAt(telemetry.EvAlloc, v.RIP, p, n*size, v.Cycles)
		v.Regs[isa.RAX] = p
		return nil
	}
	b["free"] = func(v *vm.VM, _ uint32) error {
		notePC(v)
		v.Cycles += costFreeCall
		v.Tracer.RecordAt(telemetry.EvFree, v.RIP, v.Regs[isa.RDI], 0, v.Cycles)
		if err := a.Free(v.Regs[isa.RDI]); err != nil {
			return v.Report(vm.MemError{
				Kind: vm.ErrInvalidFree,
				Addr: v.Regs[isa.RDI],
				PC:   v.RIP,
				Note: err.Error(),
			})
		}
		return nil
	}
	b["realloc"] = func(v *vm.VM, _ uint32) error {
		notePC(v)
		ptr, size := v.Regs[isa.RDI], v.Regs[isa.RSI]
		v.Cycles += costMallocCall + size/8*costPerByte8
		p, err := a.Realloc(ptr, size)
		if err != nil {
			v.Regs[isa.RAX] = 0
			return v.Report(vm.MemError{
				Kind: vm.ErrInvalidFree, Addr: ptr, PC: v.RIP, Note: err.Error(),
			})
		}
		v.Regs[isa.RAX] = p
		return nil
	}

	b["memset"] = func(v *vm.VM, _ uint32) error {
		dst, c, n := v.Regs[isa.RDI], v.Regs[isa.RSI], v.Regs[isa.RDX]
		v.Cycles += 20 + n/8*costPerByte8
		if err := m.Memset(dst, byte(c), n); err != nil {
			return err
		}
		v.Regs[isa.RAX] = dst
		return nil
	}
	b["memcpy"] = func(v *vm.VM, _ uint32) error {
		dst, src, n := v.Regs[isa.RDI], v.Regs[isa.RSI], v.Regs[isa.RDX]
		v.Cycles += 20 + n/8*costPerByte8
		if err := m.Memcpy(dst, src, n); err != nil {
			return err
		}
		v.Regs[isa.RAX] = dst
		return nil
	}
	b["strlen"] = func(v *vm.VM, _ uint32) error {
		s := v.Regs[isa.RDI]
		var n uint64
		for {
			c, err := m.Load(s+n, 1)
			if err != nil {
				return err
			}
			if c == 0 {
				break
			}
			n++
			if n > 1<<24 {
				return fmt.Errorf("rtlib: unterminated string at %#x", s)
			}
		}
		v.Cycles += 10 + n
		v.Regs[isa.RAX] = n
		return nil
	}

	b["exit"] = func(v *vm.VM, _ uint32) error {
		v.Halted = true
		v.ExitCode = v.Regs[isa.RDI]
		return nil
	}
	b["abort"] = func(v *vm.VM, _ uint32) error {
		v.Halted = true
		v.ExitCode = 134 // SIGABRT-style
		return nil
	}

	// rf_input pops the next value from the VM's input vector (models
	// reading attacker-controlled or workload input).
	b["rf_input"] = func(v *vm.VM, _ uint32) error {
		v.Cycles += costIOCall
		v.Regs[isa.RAX] = v.NextInput()
		return nil
	}
	// rf_output appends RDI to the VM's captured output.
	b["rf_output"] = func(v *vm.VM, _ uint32) error {
		v.Cycles += costIOCall
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v.Regs[isa.RDI])
		v.Output = append(v.Output, buf[:]...)
		return nil
	}
	// print_str writes the NUL-terminated string at RDI to the output.
	b["print_str"] = func(v *vm.VM, _ uint32) error {
		v.Cycles += costIOCall
		s, err := m.ReadCString(v.Regs[isa.RDI], 1<<16)
		if err != nil {
			return err
		}
		v.Output = append(v.Output, s...)
		return nil
	}

	// rf_rand is a deterministic xorshift PRNG seeded per-VM; workloads
	// use it for data-dependent but reproducible behaviour.
	b["rf_rand"] = func(v *vm.VM, _ uint32) error {
		v.Cycles += 8
		v.Regs[isa.RAX] = v.NextRand()
		return nil
	}

	return b
}

// Merge combines bindings maps (later maps win on conflicts).
func Merge(maps ...vm.Bindings) vm.Bindings {
	out := vm.Bindings{}
	for _, m := range maps {
		for k, v := range m {
			out[k] = v
		}
	}
	return out
}
