// Package rtlib implements the runtime libraries that RF64 programs call
// through RTCALL:
//
//   - a modelled libc (malloc/free/memset/memcpy/string and simple I/O),
//     bound to either the baseline glibc-style allocator or the RedFat
//     redzone/low-fat allocator — the simulation of LD_PRELOAD
//     interposition (paper §2.1);
//   - libredfat: the instrumented memory-error checks of paper Fig. 4 in
//     all their variants, with an explicit cycle-cost model (cost.go).
package rtlib

import (
	"encoding/binary"
	"errors"
	"fmt"

	"redfat/internal/isa"
	"redfat/internal/mem"
	"redfat/internal/redzone"
	"redfat/internal/telemetry"
	"redfat/internal/vm"
)

// Allocator is the malloc-family interface; both the baseline heap
// (internal/heap) and the RedFat heap (internal/redzone) satisfy it.
type Allocator interface {
	Malloc(size uint64) (uint64, error)
	Calloc(n, size uint64) (uint64, error)
	Free(ptr uint64) error
	Realloc(ptr, size uint64) (uint64, error)
}

// Cycle costs of modelled library calls. A call's cost approximates the
// instruction count of a real implementation; size-dependent costs scale
// with the bytes touched.
const (
	costMallocCall = 80
	costFreeCall   = 50
	costPerByte8   = 1 // per 8 bytes for memset/memcpy-style loops
	costIOCall     = 30
)

// pcNoter is implemented by allocators that record guest allocation
// sites for diagnostics (both heaps).
type pcNoter interface{ NoteAllocPC(pc uint64) }

// stackNoter is additionally implemented by allocators that want a guest
// backtrace per allocator call when forensics is enabled. SiteStackDepth
// returns 0 when capture is off, so the frame walk is skipped entirely.
type stackNoter interface {
	NoteAllocStack(stack []uint64)
	SiteStackDepth() int
}

// LibC builds the libc bindings over the given allocator and memory.
// The same function serves baseline and hardened runs; only the allocator
// differs, exactly as with LD_PRELOAD.
func LibC(a Allocator, m *mem.Memory) vm.Bindings {
	b := vm.Bindings{}
	notePC := func(v *vm.VM) {
		if n, ok := a.(pcNoter); ok {
			n.NoteAllocPC(v.RIP)
		}
		if n, ok := a.(stackNoter); ok {
			if depth := n.SiteStackDepth(); depth > 0 {
				n.NoteAllocStack(v.Backtrace(depth))
			}
		}
	}

	b["malloc"] = func(v *vm.VM, _ uint32) error {
		notePC(v)
		v.Cycles += costMallocCall
		p, err := a.Malloc(v.Regs[isa.RDI])
		if err != nil {
			// Out-of-memory returns NULL; allocator-integrity errors
			// (invalid free etc.) do not arise in malloc.
			v.Regs[isa.RAX] = 0
			return nil
		}
		v.Tracer.RecordAt(telemetry.EvAlloc, v.RIP, p, v.Regs[isa.RDI], v.Cycles)
		v.Regs[isa.RAX] = p
		return nil
	}
	b["calloc"] = func(v *vm.VM, _ uint32) error {
		notePC(v)
		n, size := v.Regs[isa.RDI], v.Regs[isa.RSI]
		total := n * size
		if size != 0 && total/size != n {
			// n*size wrapped: glibc returns NULL without allocating, and
			// neither the cycle cost nor the tracer may use the wrapped
			// product (a huge request must not be billed as a tiny one).
			v.Cycles += costMallocCall
			v.Regs[isa.RAX] = 0
			return nil
		}
		v.Cycles += costMallocCall + total/8*costPerByte8
		p, err := a.Calloc(n, size)
		if err != nil {
			v.Regs[isa.RAX] = 0
			return nil
		}
		v.Tracer.RecordAt(telemetry.EvAlloc, v.RIP, p, total, v.Cycles)
		v.Regs[isa.RAX] = p
		return nil
	}
	b["free"] = func(v *vm.VM, _ uint32) error {
		notePC(v)
		v.Cycles += costFreeCall
		v.Tracer.RecordAt(telemetry.EvFree, v.RIP, v.Regs[isa.RDI], 0, v.Cycles)
		if err := a.Free(v.Regs[isa.RDI]); err != nil {
			var ce *redzone.CanaryError
			if errors.As(err, &ce) {
				// The free completed; the canary verification found the
				// slack overwritten — corrupted metadata, at the smash.
				return v.Report(vm.MemError{
					Kind:      vm.ErrCorruptMeta,
					Addr:      ce.Addr,
					PC:        v.RIP,
					Component: "redzone",
					Note:      err.Error(),
				})
			}
			return v.Report(vm.MemError{
				Kind: vm.ErrInvalidFree,
				Addr: v.Regs[isa.RDI],
				PC:   v.RIP,
				Note: err.Error(),
			})
		}
		return nil
	}
	b["realloc"] = func(v *vm.VM, _ uint32) error {
		notePC(v)
		ptr, size := v.Regs[isa.RDI], v.Regs[isa.RSI]
		v.Cycles += costMallocCall + size/8*costPerByte8
		p, err := a.Realloc(ptr, size)
		if err != nil {
			var ce *redzone.CanaryError
			if errors.As(err, &ce) {
				// The resize itself succeeded; report the smash found
				// while freeing the old object.
				v.Regs[isa.RAX] = p
				return v.Report(vm.MemError{
					Kind:      vm.ErrCorruptMeta,
					Addr:      ce.Addr,
					PC:        v.RIP,
					Component: "redzone",
					Note:      err.Error(),
				})
			}
			v.Regs[isa.RAX] = 0
			return v.Report(vm.MemError{
				Kind: vm.ErrInvalidFree, Addr: ptr, PC: v.RIP, Note: err.Error(),
			})
		}
		v.Regs[isa.RAX] = p
		return nil
	}

	b["memset"] = func(v *vm.VM, _ uint32) error {
		dst, c, n := v.Regs[isa.RDI], v.Regs[isa.RSI], v.Regs[isa.RDX]
		v.Cycles += 20 + n/8*costPerByte8
		if err := m.Memset(dst, byte(c), n); err != nil {
			return err
		}
		v.Regs[isa.RAX] = dst
		return nil
	}
	b["memcpy"] = func(v *vm.VM, _ uint32) error {
		dst, src, n := v.Regs[isa.RDI], v.Regs[isa.RSI], v.Regs[isa.RDX]
		v.Cycles += 20 + n/8*costPerByte8
		if err := m.Memcpy(dst, src, n); err != nil {
			return err
		}
		v.Regs[isa.RAX] = dst
		return nil
	}
	b["memmove"] = func(v *vm.VM, _ uint32) error {
		dst, src, n := v.Regs[isa.RDI], v.Regs[isa.RSI], v.Regs[isa.RDX]
		v.Cycles += 20 + n/8*costPerByte8
		if err := memmoveBytes(m, dst, src, n); err != nil {
			return err
		}
		v.Regs[isa.RAX] = dst
		return nil
	}
	b["memcmp"] = func(v *vm.VM, _ uint32) error {
		s1, s2, n := v.Regs[isa.RDI], v.Regs[isa.RSI], v.Regs[isa.RDX]
		compared, res, err := memcmpBytes(m, s1, s2, n)
		v.Cycles += 20 + compared/8*costPerByte8
		if err != nil {
			return err
		}
		v.Regs[isa.RAX] = uint64(res)
		return nil
	}
	b["strlen"] = func(v *vm.VM, _ uint32) error {
		s := v.Regs[isa.RDI]
		var n uint64
		for {
			c, err := m.Load(s+n, 1)
			if err != nil {
				return err
			}
			if c == 0 {
				break
			}
			n++
			if n > 1<<24 {
				return fmt.Errorf("rtlib: unterminated string at %#x", s)
			}
		}
		v.Cycles += 10 + n
		v.Regs[isa.RAX] = n
		return nil
	}
	b["strcpy"] = func(v *vm.VM, _ uint32) error {
		dst, src := v.Regs[isa.RDI], v.Regs[isa.RSI]
		n, err := strlenAt(m, src, strMax)
		if err != nil {
			return err
		}
		v.Cycles += 10 + n
		if err := memmoveBytes(m, dst, src, n+1); err != nil {
			return err
		}
		v.Regs[isa.RAX] = dst
		return nil
	}
	b["strcat"] = func(v *vm.VM, _ uint32) error {
		dst, src := v.Regs[isa.RDI], v.Regs[isa.RSI]
		dlen, err := strlenAt(m, dst, strMax)
		if err != nil {
			return err
		}
		slen, err := strlenAt(m, src, strMax)
		if err != nil {
			return err
		}
		v.Cycles += 10 + dlen + slen
		if err := memmoveBytes(m, dst+dlen, src, slen+1); err != nil {
			return err
		}
		v.Regs[isa.RAX] = dst
		return nil
	}
	b["strcmp"] = func(v *vm.VM, _ uint32) error {
		s1, s2 := v.Regs[isa.RDI], v.Regs[isa.RSI]
		compared, res, err := strcmpBytes(m, s1, s2)
		v.Cycles += 10 + compared
		if err != nil {
			return err
		}
		v.Regs[isa.RAX] = uint64(res)
		return nil
	}

	b["exit"] = func(v *vm.VM, _ uint32) error {
		v.Halted = true
		v.ExitCode = v.Regs[isa.RDI]
		return nil
	}
	b["abort"] = func(v *vm.VM, _ uint32) error {
		v.Halted = true
		v.ExitCode = 134 // SIGABRT-style
		return nil
	}

	// rf_input pops the next value from the VM's input vector (models
	// reading attacker-controlled or workload input).
	b["rf_input"] = func(v *vm.VM, _ uint32) error {
		v.Cycles += costIOCall
		v.Regs[isa.RAX] = v.NextInput()
		return nil
	}
	// rf_output appends RDI to the VM's captured output.
	b["rf_output"] = func(v *vm.VM, _ uint32) error {
		v.Cycles += costIOCall
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v.Regs[isa.RDI])
		v.Output = append(v.Output, buf[:]...)
		return nil
	}
	// print_str writes the NUL-terminated string at RDI to the output.
	b["print_str"] = func(v *vm.VM, _ uint32) error {
		v.Cycles += costIOCall
		s, err := m.ReadCString(v.Regs[isa.RDI], 1<<16)
		if err != nil {
			return err
		}
		v.Output = append(v.Output, s...)
		return nil
	}

	// rf_rand is a deterministic xorshift PRNG seeded per-VM; workloads
	// use it for data-dependent but reproducible behaviour.
	b["rf_rand"] = func(v *vm.VM, _ uint32) error {
		v.Cycles += 8
		v.Regs[isa.RAX] = v.NextRand()
		return nil
	}

	return b
}

// strMax bounds every modelled string scan, matching the historical
// strlen limit (an unterminated string is a hard runtime error, not an
// endless walk through the 64-bit address space).
const strMax = 1 << 24

// strlenAt measures the NUL-terminated string at s, scanning page-sized
// spans (one TLB probe each), up to max bytes.
func strlenAt(m *mem.Memory, s uint64, max uint64) (uint64, error) {
	var n uint64
	for n < max {
		span, err := m.LoadSlice(s+n, int(max-n))
		if err != nil {
			return n, err
		}
		for i, b := range span {
			if b == 0 {
				return n + uint64(i), nil
			}
		}
		n += uint64(len(span))
	}
	return n, fmt.Errorf("rtlib: unterminated string at %#x", s)
}

// memmoveBytes copies [src, src+n) to [dst, dst+n) with memmove's
// defined overlap semantics: the destination always receives the
// original source bytes. Disjoint and downward-overlapping copies run
// forward in chunks; an upward-overlapping copy runs backward so no
// source byte is clobbered before it is read.
func memmoveBytes(m *mem.Memory, dst, src, n uint64) error {
	if n == 0 || dst == src {
		return nil
	}
	if dst < src || dst-src >= n {
		return m.Memcpy(dst, src, n)
	}
	var buf [4096]byte
	for n > 0 {
		c := uint64(len(buf))
		if c > n {
			c = n
		}
		n -= c
		if err := m.ReadAt(src+n, buf[:c]); err != nil {
			return err
		}
		if err := m.WriteAt(dst+n, buf[:c]); err != nil {
			return err
		}
	}
	return nil
}

// memcmpBytes compares [s1, s1+n) and [s2, s2+n), returning how many
// bytes were examined (early exit on the first difference, so the cycle
// cost scales with the compared prefix) and the memcmp-style verdict.
func memcmpBytes(m *mem.Memory, s1, s2, n uint64) (compared uint64, res int64, err error) {
	var b1, b2 [4096]byte
	var done uint64
	for done < n {
		c := uint64(len(b1))
		if c > n-done {
			c = n - done
		}
		if err := m.ReadAt(s1+done, b1[:c]); err != nil {
			return done, 0, err
		}
		if err := m.ReadAt(s2+done, b2[:c]); err != nil {
			return done, 0, err
		}
		for i := uint64(0); i < c; i++ {
			if b1[i] != b2[i] {
				if b1[i] < b2[i] {
					return done + i + 1, -1, nil
				}
				return done + i + 1, 1, nil
			}
		}
		done += c
	}
	return n, 0, nil
}

// strcmpBytes compares two NUL-terminated strings byte-wise, returning
// the number of compared positions and the strcmp-style verdict.
func strcmpBytes(m *mem.Memory, s1, s2 uint64) (compared uint64, res int64, err error) {
	for i := uint64(0); i < strMax; i++ {
		c1, err := m.Load(s1+i, 1)
		if err != nil {
			return i, 0, err
		}
		c2, err := m.Load(s2+i, 1)
		if err != nil {
			return i, 0, err
		}
		if c1 != c2 {
			if c1 < c2 {
				return i + 1, -1, nil
			}
			return i + 1, 1, nil
		}
		if c1 == 0 {
			return i + 1, 0, nil
		}
	}
	return strMax, 0, fmt.Errorf("rtlib: unterminated string at %#x", s1)
}

// Merge combines bindings maps (later maps win on conflicts).
func Merge(maps ...vm.Bindings) vm.Bindings {
	out := vm.Bindings{}
	for _, m := range maps {
		for k, v := range m {
			out[k] = v
		}
	}
	return out
}
