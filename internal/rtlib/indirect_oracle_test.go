package rtlib_test

import (
	"testing"

	"redfat/internal/cfg"
	"redfat/internal/rtlib"
	"redfat/internal/workload"
)

// TestIndirectEdgeOracle is the differential oracle for the indirect-flow
// recovery: run the switch-dense benchmarks while recording every actual
// indirect transfer (pc → target), and check that at every statically
// resolved site the observed targets are a subset of the recovered Succs.
// A single counterexample would mean the recovery is unsound — a real
// edge the rewriter's analyses never saw. The precision ratio (observed
// vs claimed targets) is logged alongside.
func TestIndirectEdgeOracle(t *testing.T) {
	for _, bm := range workload.SwitchDense() {
		cp := *bm
		cp.TrainScale, cp.RefScale = 300, 1500
		t.Run(cp.Name, func(t *testing.T) {
			bin, err := cp.Build()
			if err != nil {
				t.Fatal(err)
			}
			prog, err := cfg.Disassemble(bin)
			if err != nil {
				t.Fatal(err)
			}
			g := cfg.NewGraph(prog)
			if g.Indirect == nil {
				t.Fatal("recovery did not run on a marker-built binary")
			}
			claimed := g.Indirect.TargetSets()
			if len(claimed) == 0 {
				t.Fatal("recovery resolved no sites")
			}

			observed := map[uint64]map[uint64]bool{}
			rc := rtlib.RunConfig{
				Input: cp.RefInput(),
				NoJIT: true,
				IndirectHook: func(pc, target uint64) {
					s := observed[pc]
					if s == nil {
						s = map[uint64]bool{}
						observed[pc] = s
					}
					s[target] = true
				},
			}
			if _, err := rtlib.RunBaseline(bin, rc); err != nil {
				t.Fatal(err)
			}

			executed := 0
			for pc, obs := range observed {
				want, ok := claimed[pc]
				if !ok {
					continue // site the recovery left Unknown: no claim to audit
				}
				executed++
				for tgt := range obs {
					if !want[tgt] {
						t.Errorf("UNSOUND: observed transfer %#x→%#x outside the recovered set %v",
							pc, tgt, keys(want))
					}
				}
			}
			if executed == 0 {
				t.Fatal("no statically resolved site executed: the oracle observed nothing")
			}
			var nObs, nClaim int
			for pc, want := range claimed {
				if obs := observed[pc]; obs != nil {
					nObs += len(obs)
					nClaim += len(want)
				}
			}
			t.Logf("%s: %d resolved sites executed, precision %d/%d = %.2f",
				cp.Name, executed, nObs, nClaim, float64(nObs)/float64(nClaim))
		})
	}
}

func keys(m map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
