package rtlib_test

import (
	"reflect"
	"strings"
	"testing"

	"redfat/internal/redfat"
	"redfat/internal/rtlib"
	"redfat/internal/telemetry"
	"redfat/internal/vm"
	"redfat/internal/workload"
)

// stripHostOnly removes the vm.icache.* metrics from a snapshot: they
// describe the host-side decode cache, whose accounting legitimately
// differs between the map icache and the block cache (per-PC entries vs
// predecoded block instructions). Everything else — retired counts, loads,
// stores, branches, cycles, check and allocator metrics — is guest-derived
// and must be bit-identical across the two dispatch strategies.
func stripHostOnly(s *telemetry.Snapshot) *telemetry.Snapshot {
	for name := range s.Counters {
		if strings.HasPrefix(name, "vm.icache.") {
			delete(s.Counters, name)
		}
	}
	for name := range s.Gauges {
		if strings.HasPrefix(name, "vm.icache.") {
			delete(s.Gauges, name)
		}
	}
	return s
}

// runBoth executes the same binary under both dispatch strategies and
// fails the test on any guest-visible divergence.
func runBoth(t *testing.T, name string, run func(cfg rtlib.RunConfig) (*vm.VM, error)) {
	t.Helper()
	exec := func(noBlock bool) (*vm.VM, *telemetry.Snapshot, error) {
		reg := telemetry.New()
		v, err := run(rtlib.RunConfig{NoBlockCache: noBlock, Metrics: reg})
		return v, stripHostOnly(reg.Snapshot()), err
	}
	blockVM, blockTel, blockErr := exec(false)
	mapVM, mapTel, mapErr := exec(true)

	if (blockErr == nil) != (mapErr == nil) {
		t.Fatalf("%s: error divergence: block %v, map %v", name, blockErr, mapErr)
	}
	if blockErr != nil && blockErr.Error() != mapErr.Error() {
		t.Errorf("%s: error text differs: block %q, map %q", name, blockErr, mapErr)
	}
	if blockVM.Cycles != mapVM.Cycles {
		t.Errorf("%s: cycles differ: block %d, map %d", name, blockVM.Cycles, mapVM.Cycles)
	}
	if blockVM.Insts != mapVM.Insts {
		t.Errorf("%s: insts differ: block %d, map %d", name, blockVM.Insts, mapVM.Insts)
	}
	if blockVM.ExitCode != mapVM.ExitCode {
		t.Errorf("%s: exit code differs: block %d, map %d", name, blockVM.ExitCode, mapVM.ExitCode)
	}
	if !reflect.DeepEqual(blockVM.Errors, mapVM.Errors) {
		t.Errorf("%s: detected errors differ: block %v, map %v", name, blockVM.Errors, mapVM.Errors)
	}
	if !reflect.DeepEqual(blockVM.Output, mapVM.Output) {
		t.Errorf("%s: output differs", name)
	}
	if !reflect.DeepEqual(blockTel, mapTel) {
		t.Errorf("%s: guest-derived telemetry differs:\nblock: %+v\nmap:   %+v", name, blockTel, mapTel)
	}
}

// TestBlockCacheIdentity runs the whole workload suite — baseline and
// fully hardened — under both dispatch strategies and requires
// bit-identical guest results.
func TestBlockCacheIdentity(t *testing.T) {
	bms := workload.All()
	if testing.Short() {
		bms = bms[:6]
	}
	for _, bm := range bms {
		cp := *bm
		cp.RefScale = 1500
		cp.TrainScale = 300
		bin, err := cp.Build()
		if err != nil {
			t.Fatalf("%s: build: %v", cp.Name, err)
		}
		input := cp.RefInput()
		runBoth(t, cp.Name+"/baseline", func(cfg rtlib.RunConfig) (*vm.VM, error) {
			cfg.Input = input
			return rtlib.RunBaseline(bin, cfg)
		})
		hard, _, err := redfat.Harden(bin, redfat.Defaults())
		if err != nil {
			t.Fatalf("%s: harden: %v", cp.Name, err)
		}
		runBoth(t, cp.Name+"/hardened", func(cfg rtlib.RunConfig) (*vm.VM, error) {
			cfg.Input = input
			v, _, err := rtlib.RunHardened(hard, cfg)
			return v, err
		})
	}
}

// TestBlockCacheCycleBudgetIdentity checks that the cycle-budget abort
// fires at the same cycle count on both paths, including mid-block.
func TestBlockCacheCycleBudgetIdentity(t *testing.T) {
	bm := workload.ByName("bzip2")
	cp := *bm
	cp.RefScale = 5000
	bin, err := cp.Build()
	if err != nil {
		t.Fatal(err)
	}
	input := cp.RefInput()
	for _, budget := range []uint64{100, 1001, 54321, 300007} {
		runBoth(t, "bzip2/budget", func(cfg rtlib.RunConfig) (*vm.VM, error) {
			cfg.Input = input
			cfg.MaxCycles = budget
			return rtlib.RunBaseline(bin, cfg)
		})
	}
}
