package rtlib_test

import (
	"reflect"
	"strings"
	"testing"

	"redfat/internal/redfat"
	"redfat/internal/rtlib"
	"redfat/internal/telemetry"
	"redfat/internal/vm"
	"redfat/internal/workload"
)

// stripHostOnly removes the vm.icache.* and vm.jit.* metrics from a
// snapshot: they describe host-side machinery — the decode cache, whose
// accounting legitimately differs between the map icache and the block
// cache (per-PC entries vs predecoded block instructions), and the
// superblock tier, which only exists when the JIT knob is on. Everything
// else — retired counts, loads, stores, branches, cycles, check and
// allocator metrics — is guest-derived and must be bit-identical across
// the dispatch strategies.
func stripHostOnly(s *telemetry.Snapshot) *telemetry.Snapshot {
	hostOnly := func(name string) bool {
		return strings.HasPrefix(name, "vm.icache.") || strings.HasPrefix(name, "vm.jit.")
	}
	for name := range s.Counters {
		if hostOnly(name) {
			delete(s.Counters, name)
		}
	}
	for name := range s.Gauges {
		if hostOnly(name) {
			delete(s.Gauges, name)
		}
	}
	for name := range s.Histograms {
		if hostOnly(name) {
			delete(s.Histograms, name)
		}
	}
	return s
}

// fastPathConfigs is the host fast-path knob matrix: {block cache +
// chaining + superblock tier, no JIT, no chaining, map icache} × {TLB,
// no TLB}. The first entry (everything on) is the reference the rest are
// diffed against. NoChain implies no JIT (traces are built over chained
// successors), so the noChain rows ablate both layers at once and the
// noJIT rows isolate just the tier.
var fastPathConfigs = []struct {
	name                           string
	noBlock, noChain, noTLB, noJIT bool
}{
	{"block+chain+jit+tlb", false, false, false, false},
	{"block+chain+jit", false, false, true, false},
	{"block+chain+tlb", false, false, false, true},
	{"block+chain", false, false, true, true},
	{"block+tlb", false, true, false, true},
	{"block", false, true, true, true},
	{"map+tlb", true, false, false, true},
	{"map", true, false, true, true},
}

// runBoth executes the same binary under every fast-path knob combination
// and fails the test on any guest-visible divergence from the reference
// (all fast paths enabled).
func runBoth(t *testing.T, name string, run func(cfg rtlib.RunConfig) (*vm.VM, error)) {
	t.Helper()
	exec := func(noBlock, noChain, noTLB, noJIT bool) (*vm.VM, *telemetry.Snapshot, error) {
		reg := telemetry.New()
		v, err := run(rtlib.RunConfig{
			NoBlockCache: noBlock, NoChain: noChain, NoTLB: noTLB, NoJIT: noJIT,
			Metrics: reg,
		})
		return v, stripHostOnly(reg.Snapshot()), err
	}
	ref := fastPathConfigs[0]
	refVM, refTel, refErr := exec(ref.noBlock, ref.noChain, ref.noTLB, ref.noJIT)
	for _, c := range fastPathConfigs[1:] {
		gotVM, gotTel, gotErr := exec(c.noBlock, c.noChain, c.noTLB, c.noJIT)
		label := name + "/" + c.name
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: error divergence: ref %v, got %v", label, refErr, gotErr)
		}
		if refErr != nil && refErr.Error() != gotErr.Error() {
			t.Errorf("%s: error text differs: ref %q, got %q", label, refErr, gotErr)
		}
		if refVM.Cycles != gotVM.Cycles {
			t.Errorf("%s: cycles differ: ref %d, got %d", label, refVM.Cycles, gotVM.Cycles)
		}
		if refVM.Insts != gotVM.Insts {
			t.Errorf("%s: insts differ: ref %d, got %d", label, refVM.Insts, gotVM.Insts)
		}
		if refVM.ExitCode != gotVM.ExitCode {
			t.Errorf("%s: exit code differs: ref %d, got %d", label, refVM.ExitCode, gotVM.ExitCode)
		}
		if !reflect.DeepEqual(refVM.Errors, gotVM.Errors) {
			t.Errorf("%s: detected errors differ: ref %v, got %v", label, refVM.Errors, gotVM.Errors)
		}
		if !reflect.DeepEqual(refVM.Output, gotVM.Output) {
			t.Errorf("%s: output differs", label)
		}
		if !reflect.DeepEqual(refTel, gotTel) {
			t.Errorf("%s: guest-derived telemetry differs:\nref: %+v\ngot: %+v", label, refTel, gotTel)
		}
	}
}

// TestBlockCacheIdentity runs the whole workload suite — baseline and
// fully hardened — under both dispatch strategies and requires
// bit-identical guest results.
func TestBlockCacheIdentity(t *testing.T) {
	bms := workload.All()
	if testing.Short() {
		bms = bms[:6]
	}
	for _, bm := range bms {
		cp := *bm
		cp.RefScale = 1500
		cp.TrainScale = 300
		bin, err := cp.Build()
		if err != nil {
			t.Fatalf("%s: build: %v", cp.Name, err)
		}
		input := cp.RefInput()
		runBoth(t, cp.Name+"/baseline", func(cfg rtlib.RunConfig) (*vm.VM, error) {
			cfg.Input = input
			return rtlib.RunBaseline(bin, cfg)
		})
		hard, _, err := redfat.Harden(bin, redfat.Defaults())
		if err != nil {
			t.Fatalf("%s: harden: %v", cp.Name, err)
		}
		runBoth(t, cp.Name+"/hardened", func(cfg rtlib.RunConfig) (*vm.VM, error) {
			cfg.Input = input
			v, _, err := rtlib.RunHardened(hard, cfg)
			return v, err
		})
	}
}

// TestFastPathForensicsIdentity runs a hardened workload with a planted
// error under forensics and the guest profiler across the whole knob
// matrix: error reports and profile samples are derived from guest state
// (cycles, PCs, stacks), so they must be bit-identical on every path.
func TestFastPathForensicsIdentity(t *testing.T) {
	bm := workload.ByName("calculix") // planted out-of-bounds read
	cp := *bm
	cp.RefScale = 1500
	bin, err := cp.Build()
	if err != nil {
		t.Fatal(err)
	}
	hard, _, err := redfat.Harden(bin, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	input := cp.RefInput()

	type forensicRun struct {
		v       *vm.VM
		samples []vm.ProfSample
	}
	exec := func(noBlock, noChain, noTLB, noJIT bool) forensicRun {
		prof := &vm.GuestProfiler{Interval: 64}
		v, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{
			Input:        input,
			NoBlockCache: noBlock, NoChain: noChain, NoTLB: noTLB, NoJIT: noJIT,
			Forensics: true,
			Profiler:  prof,
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return forensicRun{v: v, samples: prof.Samples()}
	}
	refCfg := fastPathConfigs[0]
	ref := exec(refCfg.noBlock, refCfg.noChain, refCfg.noTLB, refCfg.noJIT)
	if len(ref.v.Errors) == 0 {
		t.Fatal("calculix run detected no errors; forensics path unexercised")
	}
	for _, c := range fastPathConfigs[1:] {
		got := exec(c.noBlock, c.noChain, c.noTLB, c.noJIT)
		if ref.v.Cycles != got.v.Cycles || ref.v.Insts != got.v.Insts {
			t.Errorf("%s: cycles/insts differ: ref %d/%d, got %d/%d",
				c.name, ref.v.Cycles, ref.v.Insts, got.v.Cycles, got.v.Insts)
		}
		if !reflect.DeepEqual(ref.v.Errors, got.v.Errors) {
			t.Errorf("%s: detected errors differ", c.name)
		}
		if !reflect.DeepEqual(ref.samples, got.samples) {
			t.Errorf("%s: profiler samples differ (%d vs %d stacks)",
				c.name, len(ref.samples), len(got.samples))
		}
	}
}

// TestBlockCacheCycleBudgetIdentity checks that the cycle-budget abort
// fires at the same cycle count on both paths, including mid-block.
func TestBlockCacheCycleBudgetIdentity(t *testing.T) {
	bm := workload.ByName("bzip2")
	cp := *bm
	cp.RefScale = 5000
	bin, err := cp.Build()
	if err != nil {
		t.Fatal(err)
	}
	input := cp.RefInput()
	for _, budget := range []uint64{100, 1001, 54321, 300007} {
		runBoth(t, "bzip2/budget", func(cfg rtlib.RunConfig) (*vm.VM, error) {
			cfg.Input = input
			cfg.MaxCycles = budget
			return rtlib.RunBaseline(bin, cfg)
		})
	}
}
