package rtlib

import (
	"fmt"
	"io"

	"redfat/internal/cfg"
	"redfat/internal/heap"
	"redfat/internal/isa"
	"redfat/internal/lowfat"
	"redfat/internal/mem"
	"redfat/internal/obs"
	"redfat/internal/redzone"
	"redfat/internal/relf"
	"redfat/internal/telemetry"
	"redfat/internal/vm"
)

// RunConfig parameterizes an execution.
type RunConfig struct {
	Input     []uint64
	MaxCycles uint64 // 0 → 2e9
	Abort     bool   // abort on detected memory errors (hardening mode)

	// RandomizeHeap enables the low-fat allocator's placement
	// randomization (the basic heap randomization paper §8 mentions).
	RandomizeHeap bool

	// QuarantineBytes overrides the free quarantine budget (-1 disables
	// the quarantine entirely, 0 keeps the default).
	QuarantineBytes int64

	// NoLibcCheck disables the hardened libc span intrinsics, reverting
	// the modelled libc to its unchecked baseline bindings. Unlike the
	// NoTLB/NoJIT family this knob is guest-visible — span checks charge
	// cycles and produce detections — so it is recorded in runpack
	// RunSpecs and replayed.
	NoLibcCheck bool

	// Canary arms canary-poisoned redzones: allocation slack is filled
	// with redzone.CanaryByte, verified on free and on span-check
	// crossings (libredfat's REDFAT_CANARY mode).
	Canary bool

	// UnderAllocEvery, when >0, under-allocates roughly one in every N
	// heap objects by a single byte (libredfat's REDFAT_TEST self-test
	// mode, deterministic via vm.NextRand). Induced detections carry a
	// "self-test under-allocation" note tag.
	UnderAllocEvery uint64

	// TraceWriter, when set, receives one line per executed instruction
	// (address and disassembly), up to TraceLimit lines (0 = 10000).
	TraceWriter io.Writer
	TraceLimit  int

	// Metrics, when set, receives counters/gauges/histograms from every
	// instrumented layer (VM dispatch, allocators, checks). Telemetry is
	// host-side only: it never alters guest cycle accounting.
	Metrics *telemetry.Registry

	// EventTrace, when set, records execution events (instruction
	// retirement, trampoline dispatch, check outcomes, alloc/free) into
	// the bounded ring buffer.
	EventTrace *telemetry.Tracer

	// NoBlockCache runs the VM on its legacy per-instruction decode
	// cache instead of the basic-block cache. A host-side validation
	// knob: guest results are identical either way, only wall-clock
	// differs.
	NoBlockCache bool

	// NoChain disables block chaining (direct block→successor links)
	// while keeping the block cache itself. Host-side validation knob,
	// same identity guarantee as NoBlockCache.
	NoChain bool

	// NoTLB disables the guest-memory software TLB, forcing every page
	// access through the page-map lookup. Host-side validation knob,
	// same identity guarantee as NoBlockCache.
	NoTLB bool

	// NoJIT disables the superblock tier (compiled traces over hot
	// chained blocks), pinning execution to the block interpreter.
	// Host-side validation knob, same identity guarantee as
	// NoBlockCache.
	NoJIT bool

	// NoIndirect disables the recovered-edge soundness monitor that is
	// otherwise armed for marker-built binaries (host-side telemetry:
	// vm.indirect.escape.count). It does NOT disable the landing-pad
	// enforcement itself — that is binary semantics, owned by the binary
	// via its .rf.jt marker, and must not vary with an ablation knob.
	NoIndirect bool

	// IndirectHook, when set, observes every indirect JMP/CALL transfer
	// (pc → target) before it commits. Host-side observability only —
	// the differential edge oracle uses it to compare actual transfers
	// against the statically recovered target sets.
	IndirectHook func(pc, target uint64)

	// JITThreshold overrides the block-hotness threshold at which
	// traces are compiled (0 keeps vm.DefaultJITThreshold).
	JITThreshold uint64

	// Forensics enables allocation-site backtrace capture in the bound
	// allocator and guest-backtrace capture on trapped memory errors,
	// feeding the forensic report builder. Host-side only: guest cycle
	// counts are bit-identical with it on or off.
	Forensics bool

	// ForensicsDepth bounds the captured backtraces (0 = default 8).
	ForensicsDepth int

	// Profiler, when set, samples guest execution by cycle budget from
	// the dispatch loop (see vm.GuestProfiler). Host-side only.
	Profiler *vm.GuestProfiler

	// Flight, when set, is the always-on flight recorder fed by the VM
	// and guest memory (dispatch events, deopts with reason, TLB flushes,
	// check failures, budget aborts). Unlike Profiler and the hooks it
	// never disables the superblock tier, and the ring's content is
	// guest-deterministic. Host-side only: a deliberately un-replayed
	// knob, absent from runpack RunSpecs.
	Flight *obs.Flight
}

// attachIndirect arms the CET-style landing-pad machinery when every
// module carries the .rf.jt marker: indirect jumps/calls to non-LPAD
// bytes fault (binary semantics, independent of any knob), and — unless
// NoIndirect — the static recovery is re-run so the VM can count dynamic
// transfers escaping the recovered target sets (host-side telemetry).
// Mixed marker/legacy module sets leave enforcement off, like a legacy
// DSO disabling process-wide IBT.
func (c *RunConfig) attachIndirect(v *vm.VM, bins ...*relf.Binary) {
	v.IndirectHook = c.IndirectHook
	for _, b := range bins {
		if !cfg.MarkerBuilt(b) {
			return
		}
	}
	v.LPADCheck = true
	if c.NoIndirect {
		return
	}
	targets := make(map[uint64]map[uint64]bool)
	for _, b := range bins {
		if b.PIC {
			continue // static addresses differ from the load bias
		}
		p, err := cfg.Disassemble(b)
		if err != nil {
			continue // e.g. partially patched text: monitor stays off
		}
		g := cfg.NewGraph(p)
		if g.Indirect == nil {
			continue
		}
		for addr, set := range g.Indirect.TargetSets() {
			targets[addr] = set
		}
	}
	if len(targets) > 0 {
		v.IndirectTargets = targets
	}
}

// defaultForensicsDepth is the backtrace depth used when Forensics is on
// and no explicit depth is configured.
const defaultForensicsDepth = 8

// siteTracker is implemented by allocators that can record forensic
// allocation sites (both heaps, and wrappers that forward to one).
type siteTracker interface{ EnableSiteTracking(depth int) }

// AttachForensics wires the profiler and forensic capture into a VM and
// its allocator. The allocator handle is parked on the VM so report
// builders can resolve faulting addresses after the run. Exported for
// runner packages (memcheck) that build their own VM.
func (c *RunConfig) AttachForensics(v *vm.VM, alloc Allocator) {
	v.Allocator = alloc
	v.Profiler = c.Profiler
	if !c.Forensics {
		return
	}
	depth := c.ForensicsDepth
	if depth <= 0 {
		depth = defaultForensicsDepth
	}
	v.ErrorStackDepth = depth
	if t, ok := alloc.(siteTracker); ok {
		t.EnableSiteTracking(depth)
	}
}

// attachTelemetry wires the configured registry and tracer into a VM.
func (c *RunConfig) attachTelemetry(v *vm.VM) {
	if c.Metrics != nil || c.EventTrace != nil {
		v.AttachTelemetry(c.Metrics, c.EventTrace)
	}
}

// AttachFlight wires the flight recorder into a VM and its memory.
// Exported for runner packages (memcheck) that build their own VM.
func (c *RunConfig) AttachFlight(v *vm.VM, m *mem.Memory) {
	v.Flight = c.Flight
	m.Flight = c.Flight
}

// AttachTrace installs the execution tracer on v if configured.
func (c *RunConfig) AttachTrace(v *vm.VM) {
	if c.TraceWriter == nil {
		return
	}
	limit := c.TraceLimit
	if limit == 0 {
		limit = 10000
	}
	n := 0
	v.TraceHook = func(v *vm.VM, pc uint64, in *isa.Inst) {
		if n >= limit {
			return
		}
		n++
		fmt.Fprintf(c.TraceWriter, "%10x: %s\n", pc, in.String())
	}
}

// newHeap builds the RedFat heap for a hardened run. The VM supplies the
// deterministic random stream for the under-allocation self-test mode.
func (c *RunConfig) newHeap(v *vm.VM, m *mem.Memory) *redzone.Heap {
	lf := lowfat.New(m)
	lf.Randomize = c.RandomizeHeap
	h := redzone.NewHeap(lf, m)
	switch {
	case c.QuarantineBytes < 0:
		h.QuarantineBytes = 0
	case c.QuarantineBytes > 0:
		h.QuarantineBytes = uint64(c.QuarantineBytes)
	}
	h.Canary = c.Canary
	if c.UnderAllocEvery > 0 {
		h.UnderAllocEvery = c.UnderAllocEvery
		h.Rand = v.NextRand
	}
	h.AttachTelemetry(c.Metrics)
	return h
}

func (c *RunConfig) maxCycles() uint64 {
	if c.MaxCycles == 0 {
		return 2_000_000_000
	}
	return c.MaxCycles
}

// RunBaseline executes an uninstrumented binary with the glibc-style
// allocator. Returns the VM after execution (inspect ExitCode, Cycles,
// Output) and the run error, if any.
func RunBaseline(bin *relf.Binary, cfg RunConfig) (*vm.VM, error) {
	m := mem.New()
	v := vm.New(m)
	v.Input = cfg.Input
	v.MaxCycles = cfg.maxCycles()
	v.NoBlockCache = cfg.NoBlockCache
	v.NoChain = cfg.NoChain
	v.NoJIT = cfg.NoJIT
	v.JITThreshold = cfg.JITThreshold
	m.NoTLB = cfg.NoTLB
	cfg.AttachFlight(v, m)
	cfg.AttachTrace(v)
	cfg.attachTelemetry(v)
	cfg.attachIndirect(v, bin)
	h := heap.New(m)
	h.AttachTelemetry(cfg.Metrics)
	cfg.AttachForensics(v, h)
	env := LibC(h, m)
	if err := v.Load(bin, env); err != nil {
		return v, err
	}
	return v, v.Run()
}

// RunHardened executes a RedFat-hardened binary: the low-fat allocator
// with the redzone wrapper is interposed over malloc (the LD_PRELOAD
// model) and the check routine is bound to the site table. It returns the
// VM and the runtime (for profiling counters and coverage).
func RunHardened(bin *relf.Binary, cfg RunConfig) (*vm.VM, *Runtime, error) {
	m := mem.New()
	v := vm.New(m)
	v.Input = cfg.Input
	v.MaxCycles = cfg.maxCycles()
	v.AbortOnError = cfg.Abort
	v.NoBlockCache = cfg.NoBlockCache
	v.NoChain = cfg.NoChain
	v.NoJIT = cfg.NoJIT
	v.JITThreshold = cfg.JITThreshold
	m.NoTLB = cfg.NoTLB
	cfg.AttachFlight(v, m)
	cfg.AttachTrace(v)
	cfg.attachTelemetry(v)
	cfg.attachIndirect(v, bin)
	h := cfg.newHeap(v, m)
	cfg.AttachForensics(v, h)
	rt, err := NewRuntime(bin, h)
	if err != nil {
		return v, nil, err
	}
	rt.AttachTelemetry(cfg.Metrics, cfg.EventTrace)
	InstallInlineChecks(v, map[*relf.Binary]*Runtime{bin: rt})
	env := LibC(h, m)
	if !cfg.NoLibcCheck {
		env = Merge(env, SpanLibC(h, m))
	}
	env = Merge(env, rt.Bindings())
	if err := v.Load(bin, env); err != nil {
		return v, rt, err
	}
	err = v.Run()
	return v, rt, err
}

// RunLinked executes a dynamically linked program: the main executable
// plus shared-object dependencies, loaded in order (paper §7.4). Each
// module may or may not have been instrumented by RedFat — only the
// instrumented ones are protected, which is exactly the semantics of
// statically rewriting individual ELF files. The process-wide allocator
// is the RedFat heap (the LD_PRELOAD interposition affects every module).
//
// The returned runtimes parallel the instrumented modules, libraries
// first, main last (if instrumented).
func RunLinked(main *relf.Binary, libs []*relf.Binary, cfg RunConfig) (*vm.VM, []*Runtime, error) {
	m := mem.New()
	v := vm.New(m)
	v.Input = cfg.Input
	v.MaxCycles = cfg.maxCycles()
	v.AbortOnError = cfg.Abort
	v.NoBlockCache = cfg.NoBlockCache
	v.NoChain = cfg.NoChain
	v.NoJIT = cfg.NoJIT
	v.JITThreshold = cfg.JITThreshold
	m.NoTLB = cfg.NoTLB
	cfg.AttachFlight(v, m)
	cfg.AttachTrace(v)
	cfg.attachTelemetry(v)
	cfg.attachIndirect(v, append([]*relf.Binary{main}, libs...)...)
	h := cfg.newHeap(v, m)
	cfg.AttachForensics(v, h)
	libc := LibC(h, m)
	if !cfg.NoLibcCheck {
		libc = Merge(libc, SpanLibC(h, m))
	}

	var rts []*Runtime
	mods := make(map[*relf.Binary]*Runtime)
	envFor := func(bin *relf.Binary) (vm.Bindings, error) {
		if bin.Section(SitesSection) == nil {
			return libc, nil // uninstrumented module: libc only
		}
		rt, err := NewRuntime(bin, h)
		if err != nil {
			return nil, err
		}
		rt.AttachTelemetry(cfg.Metrics, cfg.EventTrace)
		rts = append(rts, rt)
		mods[bin] = rt
		return Merge(libc, rt.Bindings()), nil
	}
	for _, lib := range libs {
		env, err := envFor(lib)
		if err != nil {
			return v, rts, err
		}
		if err := v.LoadLibrary(lib, env); err != nil {
			return v, rts, err
		}
	}
	env, err := envFor(main)
	if err != nil {
		return v, rts, err
	}
	if err := v.Load(main, env); err != nil {
		return v, rts, err
	}
	InstallInlineChecks(v, mods)
	err = v.Run()
	return v, rts, err
}
