package rtlib

// The check fast path: per-site constants the real RedFat specializes
// into trampoline assembly at rewrite time are precomputed here once, at
// Harden/load time (NewRuntime), instead of being re-derived on every
// check execution. The handle hot path then reduces to: rebuild the
// access range from at most two register reads plus a baked-in static
// offset, look up the cycle cost in a four-entry table, and run the
// merged comparisons against precomputed bounds constants.
//
// Everything precomputed is a pure function of the Check record, so the
// charged guest cycles and verdicts are bit-identical to the interpretive
// path (checkCost stays as the executable specification; the test suite
// diffs the table against it exhaustively).

import (
	"redfat/internal/isa"
	"redfat/internal/vm"
)

// checkFast is the precomputed execution plan of one instrumentation site.
type checkFast struct {
	// staticOff is the constant part of the access offset: the operand
	// displacement, plus the baked-in next-instruction address for
	// RIP-relative operands.
	staticOff uint64

	// baseReg is the register holding the (potentially low-fat) pointer,
	// or isa.RegNone when the operand has no pointer register (absolute
	// or RIP-relative addressing).
	baseReg isa.Reg

	// indexReg/scale fold the scaled-index contribution (RegNone = none).
	indexReg isa.Reg
	scale    uint64

	seg isa.Seg // segment-base register selector (SegNone common case)

	length uint64 // access span length, widened once

	tryLowFat bool // Full/Profile: attempt base(ptr) before base(LB)
	sizeCheck bool // metadata hardening enabled (!NoSizeCheck)
	profile   bool // ModeProfile: record verdicts, never abort

	// costs is the charged-cycle table indexed by fatIdx: the check cost
	// is a pure function of (site constants, fat, fallbackFat), so all
	// reachable combinations are folded at load time.
	costs [4]uint64

	// oobKind is the error kind reported on a bounds violation
	// (read/write folded from Check.Write).
	oobKind vm.MemErrorKind
}

// fatIdx packs the dynamic (fat, fallbackFat) outcome into a costs index.
func fatIdx(fat, fallbackFat bool) int {
	i := 0
	if fat {
		i |= 2
	}
	if fallbackFat {
		i |= 1
	}
	return i
}

// compileCheck precomputes the fast-path plan for one site.
func compileCheck(c *Check) checkFast {
	cf := checkFast{
		staticOff: uint64(int64(c.Operand.Disp)),
		baseReg:   isa.RegNone,
		indexReg:  c.Operand.Index,
		scale:     uint64(c.Operand.Scale),
		seg:       c.Operand.Seg,
		length:    uint64(c.Len),
		tryLowFat: c.Mode == ModeFull || c.Mode == ModeProfile,
		sizeCheck: !c.NoSizeCheck,
		profile:   c.Mode == ModeProfile,
		oobKind:   vm.ErrOOBRead,
	}
	if c.Write {
		cf.oobKind = vm.ErrOOBWrite
	}
	switch {
	case c.Operand.Base == isa.RIP:
		cf.staticOff += c.RipNext
	case c.Operand.Base != isa.RegNone:
		cf.baseReg = c.Operand.Base
	}
	for _, fat := range []bool{false, true} {
		for _, fb := range []bool{false, true} {
			cf.costs[fatIdx(fat, fb)] = checkCost(c, fat, fb)
		}
	}
	return cf
}

// compileChecks builds the fast-path table for a whole site table.
func compileChecks(checks []Check) []checkFast {
	fast := make([]checkFast, len(checks))
	for i := range checks {
		fast[i] = compileCheck(&checks[i])
	}
	return fast
}

// accessRange rebuilds (ptr, lb, ub) for one execution of the site: the
// dynamic part is at most two register reads; everything else was folded
// into staticOff at load time.
func (cf *checkFast) accessRange(v *vm.VM) (ptr, lb, ub uint64) {
	i := cf.staticOff
	if cf.baseReg != isa.RegNone {
		ptr = v.Regs[cf.baseReg]
	}
	if cf.indexReg != isa.RegNone {
		i += v.Regs[cf.indexReg] * cf.scale
	}
	switch cf.seg {
	case isa.SegFS:
		i += v.FSBase
	case isa.SegGS:
		i += v.GSBase
	}
	lb = ptr + i
	return ptr, lb, lb + cf.length
}
