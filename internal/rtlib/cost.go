package rtlib

// Cycle-cost model for the instrumented checks.
//
// In the real RedFat, trampolines contain hand-optimized x86_64 assembly;
// in this reproduction the check logic executes host-side (the RTCALL
// handler) and charges the cycle cost of the instruction sequence it
// stands for. The constants below are derived by counting the operations
// of each check step at vm.CostInst/CostMem rates:
//
//	register/flag save+restore     2 cycles per register pair + 4 for flags
//	LB/UB computation (2× lea)     3
//	base(ptr): shift, table load,
//	  magic-multiply modulo        6
//	header load (STATE/SIZE)       3
//	size-metadata validation       3   (the -size option removes this)
//	merged UaF+LB+UB compare       5   (underflow-trick variant)
//	redzone fallback base(LB)      6   (only when ptr is non-fat)
//
// The profiling variant additionally maintains per-site counters (+4).
const (
	costSavePerReg = 1
	costSaveFlags  = 2
	costAddrCalc   = 2
	costBasePtr    = 4
	costHeaderLoad = 2
	costSizeCheck  = 2
	costBoundsCmp  = 3
	costProfileAcc = 4
)

// Hardened-libc span-check costs (span.go): one object resolution
// validates an entire [p, p+n) operand, so the cost is O(1) in n — the
// same step sequence as a full per-access check, minus the register
// save/restore (the handler already owns the register file).
const (
	costSpanCheckFat    = costAddrCalc + costBasePtr + costHeaderLoad + costSizeCheck + costBoundsCmp
	costSpanCheckNonFat = costAddrCalc + costBasePtr
)

// checkCost returns the cycle cost of executing the check c once, given
// whether the pointer turned out to be low-fat (the non-fat fallback path
// costs one more base computation but skips the rest when LB is also
// non-fat).
func checkCost(c *Check, fat, fallbackFat bool) uint64 {
	cost := uint64(0)
	if c.Leader {
		cost += uint64(c.SavedRegs) * costSavePerReg
		if c.SaveFlags {
			cost += costSaveFlags
		}
	}
	cost += costAddrCalc
	switch c.Mode {
	case ModeFull, ModeProfile:
		cost += costBasePtr
		if !fat {
			cost += costBasePtr // fallback: base(LB)
			if !fallbackFat {
				return cost // non-fat pointer: check returns early
			}
		}
	case ModeRedzone:
		cost += costBasePtr // base(LB)
		if !fallbackFat {
			return cost
		}
	}
	cost += costHeaderLoad
	if !c.NoSizeCheck {
		cost += costSizeCheck
	}
	cost += costBoundsCmp
	if c.Mode == ModeProfile {
		cost += costProfileAcc
	}
	return cost
}
