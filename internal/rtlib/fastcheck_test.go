package rtlib

import (
	"math/rand"
	"testing"

	"redfat/internal/isa"
	"redfat/internal/mem"
	"redfat/internal/vm"
)

// TestFastCheckCostTable diffs the precomputed per-site cost table against
// checkCost, the executable specification, over every combination of the
// site constants that feed the cost model and every dynamic (fat,
// fallbackFat) outcome.
func TestFastCheckCostTable(t *testing.T) {
	for _, mode := range []Mode{ModeRedzone, ModeFull, ModeProfile} {
		for _, leader := range []bool{false, true} {
			for _, savedRegs := range []uint8{0, 1, 3, 15} {
				for _, saveFlags := range []bool{false, true} {
					for _, noSize := range []bool{false, true} {
						c := Check{
							Mode:        mode,
							Leader:      leader,
							SavedRegs:   savedRegs,
							SaveFlags:   saveFlags,
							NoSizeCheck: noSize,
						}
						cf := compileCheck(&c)
						for _, fat := range []bool{false, true} {
							for _, fb := range []bool{false, true} {
								want := checkCost(&c, fat, fb)
								got := cf.costs[fatIdx(fat, fb)]
								if got != want {
									t.Fatalf("mode=%v leader=%v regs=%d flags=%v nosize=%v fat=%v fb=%v: cost %d, want %d",
										mode, leader, savedRegs, saveFlags, noSize, fat, fb, got, want)
								}
							}
						}
					}
				}
			}
		}
	}
}

// refAccessRange is the interpretive operand reconstruction the fast path
// replaced (paper §4.1), kept verbatim as the reference.
func refAccessRange(c *Check, v *vm.VM) (ptr, lb, ub uint64) {
	i := uint64(int64(c.Operand.Disp))
	switch {
	case c.Operand.Base == isa.RIP:
		i += c.RipNext
	case c.Operand.Base != isa.RegNone:
		ptr = v.Regs[c.Operand.Base]
	}
	if c.Operand.Index != isa.RegNone {
		i += v.Regs[c.Operand.Index] * uint64(c.Operand.Scale)
	}
	switch c.Operand.Seg {
	case isa.SegFS:
		i += v.FSBase
	case isa.SegGS:
		i += v.GSBase
	}
	lb = ptr + i
	return ptr, lb, lb + uint64(c.Len)
}

// TestFastCheckAccessRange fuzzes operand shapes and register states and
// checks the precomputed plan reconstructs the same (ptr, LB, UB) as the
// reference reconstruction.
func TestFastCheckAccessRange(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	v := vm.New(mem.New())
	bases := []isa.Reg{isa.RegNone, isa.RIP, isa.RAX, isa.RBX, isa.RSP, isa.R12}
	indexes := []isa.Reg{isa.RegNone, isa.RCX, isa.RDI, isa.R9}
	segs := []isa.Seg{isa.SegNone, isa.SegFS, isa.SegGS}
	for trial := 0; trial < 5000; trial++ {
		for r := range v.Regs {
			v.Regs[r] = rng.Uint64()
		}
		v.FSBase = rng.Uint64()
		v.GSBase = rng.Uint64()
		c := Check{
			Operand: isa.Mem{
				Seg:   segs[rng.Intn(len(segs))],
				Disp:  int32(rng.Uint32()),
				Base:  bases[rng.Intn(len(bases))],
				Index: indexes[rng.Intn(len(indexes))],
				Scale: uint8(1 << rng.Intn(4)),
			},
			Len:     uint32(1 + rng.Intn(64)),
			RipNext: rng.Uint64(),
		}
		cf := compileCheck(&c)
		wp, wlb, wub := refAccessRange(&c, v)
		gp, glb, gub := cf.accessRange(v)
		if gp != wp || glb != wlb || gub != wub {
			t.Fatalf("trial %d operand %+v: (ptr,lb,ub)=(%#x,%#x,%#x), want (%#x,%#x,%#x)",
				trial, c.Operand, gp, glb, gub, wp, wlb, wub)
		}
	}
}
