// Package kraken reproduces the paper's scalability experiment (§7.3,
// Fig. 8): instrumenting a very large, Chrome-like binary and measuring
// the overhead of write-only hardening under the 14 Kraken browser
// sub-benchmarks.
//
// The generated "Chrome" image composes:
//
//   - the 14 Kraken driver functions (astar … sha256-iterative), each
//     built around a workload kernel matching the sub-benchmark's
//     character plus an indirect-call dispatch through a function-pointer
//     table (the v8/Blink virtual-dispatch flavour);
//   - a large population of filler functions forming call chains, to give
//     the rewriter a text section with tens of thousands of
//     instrumentation sites, mixed instruction shapes, and jump-table
//     targets it must treat conservatively.
//
// The real Chrome binary is ~149 MB of x86-64; the generated image is
// parameterized by function count and reaches multi-megabyte text at the
// benchmark harness's default, which exercises the same rewriting
// machinery (tactic selection, trampoline budget, conservative leaders)
// at a scale Go test time permits.
package kraken

import (
	"fmt"

	"redfat/internal/asm"
	"redfat/internal/isa"
	"redfat/internal/relf"
	"redfat/internal/workload"
)

// Benchmarks lists the Kraken sub-benchmarks in the paper's Fig. 8 order.
var Benchmarks = []string{
	"astar", "beat-detection", "dft", "fft", "oscillator",
	"gaussian-blur", "darkroom", "desaturate", "parse-financial",
	"stringify-tinderbox", "aes", "ccm", "pbkdf2", "sha256-iterative",
}

// kernelFor maps each Kraken sub-benchmark to a kernel matching its
// memory-access character.
func kernelFor(i int) workload.Kern {
	switch Benchmarks[i] {
	case "astar":
		return workload.Kern{Kind: workload.KTree}
	case "beat-detection", "dft", "fft", "oscillator":
		return workload.Kern{Kind: workload.KStencil}
	case "gaussian-blur", "darkroom":
		return workload.Kern{Kind: workload.KSweep}
	case "desaturate", "parse-financial", "stringify-tinderbox":
		return workload.Kern{Kind: workload.KString}
	default: // aes, ccm, pbkdf2, sha256-iterative
		return workload.Kern{Kind: workload.KHash}
	}
}

// Build generates the Chrome-like binary with the given number of filler
// functions (≥ 64). Input protocol: rf_input() → sub-benchmark index,
// rf_input() → scale.
func Build(fillerFuncs int) (*relf.Binary, error) {
	if fillerFuncs < 64 {
		fillerFuncs = 64
	}
	b := asm.NewBuilder(asm.Options{FuncAlign: 16})
	nb := len(Benchmarks)

	// main: dispatch on the sub-benchmark index.
	b.Func("main")
	b.CallImport("rf_input")
	b.MovRR(isa.R10, isa.RAX) // bench index
	b.CallImport("rf_input")
	b.MovRR(isa.RDI, isa.RAX) // scale
	for i := range Benchmarks {
		next := fmt.Sprintf("main_next_%d", i)
		b.AluRI(isa.CMP, isa.R10, int64(i))
		b.Jcc(isa.JNE, next)
		b.Call(driverName(i))
		b.Ret()
		b.Label(next)
	}
	b.MovRI(isa.RAX, 0)
	b.Ret()

	// Drivers: kernel + indirect-call walk over a slice of the filler
	// population through a function-pointer table.
	seg := fillerFuncs / nb
	for i := range Benchmarks {
		emitDriver(b, i, seg)
	}
	for i := range Benchmarks {
		workload.EmitKernel(b, kernName(i), kernelFor(i))
	}

	// Filler population: varied small functions chained by calls.
	for f := 0; f < fillerFuncs; f++ {
		emitFiller(b, f, fillerFuncs)
	}

	// Jump tables: per driver, the chain heads in its segment.
	for i := range Benchmarks {
		var heads []string
		for h := i * seg; h < (i+1)*seg; h += 8 {
			heads = append(heads, fillerName(h))
		}
		b.FuncTable(tableName(i), heads...)
	}

	bin, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("kraken: %w", err)
	}
	bin.Strip() // Chrome is a stripped COTS binary
	return bin, nil
}

func driverName(i int) string { return fmt.Sprintf("kraken_%d", i) }
func kernName(i int) string   { return fmt.Sprintf("kernel_%d", i) }
func tableName(i int) string  { return fmt.Sprintf("ktab_%d", i) }
func fillerName(f int) string { return fmt.Sprintf("fn_%05d", f) }

// emitDriver: runs the kernel, then n indirect calls through the jump
// table into the filler chains, accumulating a checksum.
func emitDriver(b *asm.Builder, i, seg int) {
	heads := (seg + 7) / 8
	b.Func(driverName(i))
	b.Push(isa.RBX)
	b.Push(isa.R12)
	b.Push(isa.R13)
	b.Push(isa.R14)
	b.MovRR(isa.R12, isa.RDI) // n
	// Kernel pass.
	b.Call(kernName(i))
	b.MovRR(isa.R14, isa.RAX) // checksum
	// Scratch buffer for the filler chains.
	b.MovRI(isa.RDI, 512)
	b.CallImport("malloc")
	b.MovRR(isa.RBX, isa.RAX)
	b.MovRR(isa.RDI, isa.RBX)
	b.MovRI(isa.RSI, 0)
	b.MovRI(isa.RDX, 512)
	b.CallImport("memset")
	b.MovRI(isa.R13, 0)
	loop := fmt.Sprintf("kraken_loop_%d", i)
	b.Label(loop)
	// target = ktab[i13 % heads]; call target(buf, i13)
	b.MovRR(isa.RAX, isa.R13)
	b.MovRI(isa.RDX, 0)
	b.MovRI(isa.RCX, int64(heads))
	b.Emit(isa.Inst{Op: isa.UDIV, Form: isa.FR, Reg: isa.RCX, Size: 8}) // RDX = i13 % heads
	b.LoadAddr(isa.RCX, tableName(i), 0)
	b.LoadM(isa.RCX, asm.MemBID(isa.RCX, isa.RDX, 8, 0), 8)
	b.MovRR(isa.RDI, isa.RBX)
	b.MovRR(isa.RSI, isa.R13)
	b.Emit(isa.Inst{Op: isa.CALL, Form: isa.FR, Reg: isa.RCX, Size: 8})
	b.AluRR(isa.ADD, isa.R14, isa.RAX)
	b.AluRI(isa.ADD, isa.R13, 1)
	b.AluRR(isa.CMP, isa.R13, isa.R12)
	b.Jcc(isa.JL, loop)
	b.MovRR(isa.RDI, isa.RBX)
	b.CallImport("free")
	b.MovRR(isa.RAX, isa.R14)
	b.Pop(isa.R14)
	b.Pop(isa.R13)
	b.Pop(isa.R12)
	b.Pop(isa.RBX)
	b.Ret()
}

// emitFiller: a small function with a varied body; functions whose index
// is not ≡7 (mod 8) tail into the next one, forming depth-8 call chains.
// Signature: RDI = 512-byte buffer, RSI = seed; returns RAX.
func emitFiller(b *asm.Builder, f, total int) {
	b.Func(fillerName(f))
	slot := int32((f % 56) * 8)
	switch f % 4 {
	case 0: // store + load
		b.MovRR(isa.RAX, isa.RSI)
		b.AluRI(isa.ADD, isa.RAX, int64(f&0xFF))
		b.Store(isa.RDI, slot, isa.RAX, 8)
		b.AluRM(isa.ADD, isa.RAX, asm.MemBID(isa.RDI, isa.RegNone, 1, slot), 8)
	case 1: // read-modify-write
		b.MovRR(isa.RAX, isa.RSI)
		b.AluMR(isa.ADD, asm.MemBID(isa.RDI, isa.RegNone, 1, slot), isa.RAX, 8)
		b.Load(isa.RAX, isa.RDI, slot, 8)
	case 2: // sub-word traffic
		b.MovRR(isa.RAX, isa.RSI)
		b.Store(isa.RDI, slot, isa.RAX, 1)
		b.Emit(isa.Inst{Op: isa.MOVZX, Form: isa.FRM, Reg: isa.RAX, Size: 1,
			Mem: asm.MemBID(isa.RDI, isa.RegNone, 1, slot)})
		b.Shift(isa.SHL, isa.RAX, 2)
	case 3: // pure ALU (no memory: check elimination sees plenty of these)
		b.MovRR(isa.RAX, isa.RSI)
		b.Shift(isa.SHL, isa.RAX, 1)
		b.AluRI(isa.XOR, isa.RAX, (int64(f)*2654435761)&0x7FFFFFFF)
		b.AluRI(isa.AND, isa.RAX, 0xFFFF)
	}
	if f%8 != 7 && f+1 < total {
		b.Push(isa.RAX)
		b.Call(fillerName(f + 1))
		b.MovRR(isa.RDX, isa.RAX)
		b.Pop(isa.RAX)
		b.AluRR(isa.ADD, isa.RAX, isa.RDX)
	}
	b.Ret()
}
