package kraken_test

import (
	"testing"

	"redfat/internal/kraken"
	"redfat/internal/redfat"
	"redfat/internal/rtlib"
)

func TestBenchmarkList(t *testing.T) {
	if len(kraken.Benchmarks) != 14 {
		t.Fatalf("Kraken benchmarks = %d, want 14 (paper Fig. 8)", len(kraken.Benchmarks))
	}
}

func TestChromeBuildsAndRuns(t *testing.T) {
	bin, err := kraken.Build(512)
	if err != nil {
		t.Fatal(err)
	}
	if !bin.Stripped {
		t.Error("chrome image not stripped")
	}
	if len(bin.Text().Data) < 20000 {
		t.Errorf("text only %d bytes", len(bin.Text().Data))
	}
	for i := range kraken.Benchmarks {
		v, err := rtlib.RunBaseline(bin, rtlib.RunConfig{
			Input: []uint64{uint64(i), 200},
		})
		if err != nil {
			t.Fatalf("%s: %v", kraken.Benchmarks[i], err)
		}
		if v.Insts < 1000 {
			t.Errorf("%s: only %d instructions", kraken.Benchmarks[i], v.Insts)
		}
	}
}

func TestChromeHardensWritesOnly(t *testing.T) {
	// The paper's §7.3 configuration: (Redzone)+(LowFat) for all writes.
	bin, err := kraken.Build(512)
	if err != nil {
		t.Fatal(err)
	}
	opt := redfat.Defaults()
	opt.CheckReads = false
	hard, rep, err := redfat.Harden(bin, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checks == 0 || rep.Rewrite.Patched == 0 {
		t.Fatalf("no instrumentation: %+v", rep)
	}
	// Differential + overhead across all 14 sub-benchmarks.
	for i := range kraken.Benchmarks {
		input := []uint64{uint64(i), 150}
		base, err := rtlib.RunBaseline(bin, rtlib.RunConfig{Input: input})
		if err != nil {
			t.Fatal(err)
		}
		hv, _, err := rtlib.RunHardened(hard, rtlib.RunConfig{Input: input, Abort: true})
		if err != nil {
			t.Fatalf("%s: hardened: %v", kraken.Benchmarks[i], err)
		}
		if hv.ExitCode != base.ExitCode {
			t.Errorf("%s: checksum %#x != %#x", kraken.Benchmarks[i], hv.ExitCode, base.ExitCode)
		}
		slow := float64(hv.Cycles) / float64(base.Cycles)
		if slow < 1.0 || slow > 4.0 {
			t.Errorf("%s: write-only slowdown %.2f× outside expected band", kraken.Benchmarks[i], slow)
		}
	}
}

func TestScalesWithFunctionCount(t *testing.T) {
	small, err := kraken.Build(256)
	if err != nil {
		t.Fatal(err)
	}
	big, err := kraken.Build(4096)
	if err != nil {
		t.Fatal(err)
	}
	if len(big.Text().Data) < 8*len(small.Text().Data) {
		t.Errorf("text did not scale: %d vs %d", len(big.Text().Data), len(small.Text().Data))
	}
	// Instrumenting the big image must succeed and produce proportional
	// instrumentation.
	hardSmall, repSmall, err := redfat.Harden(small, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	hardBig, repBig, err := redfat.Harden(big, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	_ = hardSmall
	_ = hardBig
	if repBig.Checks < 8*repSmall.Checks {
		t.Errorf("checks did not scale: %d vs %d", repBig.Checks, repSmall.Checks)
	}
}
