package redfat_test

import (
	"path/filepath"
	"testing"

	"redfat"
)

const vulnerableSrc = `
# A toy vulnerable server: reads an index, writes to a heap array.
.func main
    mov $40, %rdi
    call @malloc
    mov %rax, %rbx
    call @rf_input            ; attacker-controlled index
    mov $7, %rcx
    mov %rcx, (%rbx,%rax,8)   ; array[i] = 7
    mov $0, %rax
    ret
`

func TestPublicAPIEndToEnd(t *testing.T) {
	bin, err := redfat.Assemble(vulnerableSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline run, benign input.
	res, err := redfat.Run(bin, redfat.RunOptions{Input: []uint64{2}})
	if err != nil || res.ExitCode != 0 {
		t.Fatalf("baseline: %v %+v", err, res)
	}

	hard, rep, err := redfat.Harden(bin, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checks == 0 {
		t.Fatal("no checks")
	}

	// Benign input passes, attack is caught.
	res, err = redfat.Run(hard, redfat.RunOptions{
		Input: []uint64{2}, Hardened: true, AbortOnError: true,
	})
	if err != nil || len(res.Errors) != 0 {
		t.Fatalf("benign hardened run: %v %v", err, res.Errors)
	}
	_, err = redfat.Run(hard, redfat.RunOptions{
		Input: []uint64{5}, Hardened: true, AbortOnError: true,
	})
	if _, ok := err.(*redfat.MemError); !ok {
		t.Fatalf("attack not detected: %v", err)
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	bin, err := redfat.Assemble(vulnerableSrc)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "prog.relf")
	if err := redfat.SaveBinary(bin, path); err != nil {
		t.Fatal(err)
	}
	got, err := redfat.LoadBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entry != bin.Entry {
		t.Errorf("entry mismatch after round trip")
	}
	if _, err := redfat.LoadBinary(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("loading missing file succeeded")
	}
}

func TestProfileAndHardenAPI(t *testing.T) {
	src := `
.func main
    mov $128, %rdi
    call @malloc
    mov %rax, %rbx
    sub $64, %rbx             ; anti-idiom base pointer
    call @rf_input
    mov $1, %rcx
    movb %rcx, (%rbx,%rax,1)  ; (array-64)[i]
    mov $0, %rax
    ret
`
	bin, err := redfat.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	hard, allow, _, err := redfat.ProfileAndHarden(bin,
		[][]uint64{{64}, {100}}, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	res, err := redfat.Run(hard, redfat.RunOptions{
		Input: []uint64{70}, Hardened: true, AbortOnError: true,
	})
	if err != nil || len(res.Errors) != 0 {
		t.Fatalf("false positive after profiling: %v %v", err, res.Errors)
	}
	// Allow-list file round trip.
	path := filepath.Join(t.TempDir(), "allow.lst")
	if err := redfat.SaveAllowList(allow, path); err != nil {
		t.Fatal(err)
	}
	got, err := redfat.LoadAllowList(path)
	if err != nil || len(got) != len(allow) {
		t.Fatalf("allow-list round trip: %v (%d vs %d)", err, len(got), len(allow))
	}
}

func TestMemcheckAPI(t *testing.T) {
	bin, err := redfat.Assemble(vulnerableSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := redfat.Run(bin, redfat.RunOptions{Input: []uint64{5}, Memcheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Errors) == 0 {
		t.Error("Memcheck missed the incremental overflow into the redzone")
	}
	if _, err := redfat.Run(bin, redfat.RunOptions{Memcheck: true, Hardened: true}); err == nil {
		t.Error("Memcheck+Hardened accepted")
	}
}

func TestRunLinkedAPI(t *testing.T) {
	lib, err := redfat.Assemble(`
.func lib_get
    mov (%rdi), %rax
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	lib.Rebase(0x5000000 - 0x400000)
	main, err := redfat.Assemble(`
.func main
    mov $32, %rdi
    call @malloc
    mov %rax, %rbx
    mov $55, %rcx
    mov %rcx, (%rbx)
    mov %rbx, %rdi
    call @lib_get
    ret
`)
	if err != nil {
		t.Fatal(err)
	}
	hardLib, _, err := redfat.Harden(lib, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	hardMain, _, err := redfat.Harden(main, redfat.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	res, err := redfat.RunLinked(hardMain, []*redfat.Binary{hardLib},
		redfat.RunOptions{Hardened: true, AbortOnError: true})
	if err != nil || res.ExitCode != 55 {
		t.Fatalf("linked run: exit=%d err=%v", res.ExitCode, err)
	}
	if res.Coverage == 0 {
		t.Error("linked run reported zero coverage")
	}
	if _, err := redfat.RunLinked(hardMain, nil, redfat.RunOptions{Memcheck: true}); err == nil {
		t.Error("Memcheck linked run accepted")
	}
}
