module redfat

go 1.22
