// rfprofile runs the profile-based false-positive mitigation workflow of
// paper Fig. 5: phase 1 instruments the binary for profiling and runs it
// against a test suite to generate an allow-list; with -harden it also
// produces the final production binary.
//
// Usage:
//
//	rfprofile -tests "1,2,3;4,5" [-allowlist allow.lst] [-harden prog.hard.relf] prog.relf
//
// -tests is a semicolon-separated list of test inputs, each a
// comma-separated vector of rf_input values.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"redfat"
	"redfat/internal/fuzz"
)

func main() {
	tests := flag.String("tests", "", "test-suite inputs: \"1,2;3,4\" (required)")
	allowOut := flag.String("allowlist", "allow.lst", "allow-list output file")
	hardenOut := flag.String("harden", "", "also produce the hardened binary")
	reads := flag.Bool("reads", true, "production binary checks reads too")
	size := flag.Bool("size", true, "production binary keeps metadata hardening")
	fuzzRuns := flag.Int("fuzz", 0, "boost coverage with N coverage-guided fuzzing runs")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rfprofile -tests \"in1;in2\" [flags] prog.relf\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 || *tests == "" {
		flag.Usage()
		os.Exit(2)
	}

	bin, err := redfat.LoadBinary(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var suite [][]uint64
	for _, t := range strings.Split(*tests, ";") {
		var in []uint64
		for _, f := range strings.Split(t, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			v, err := strconv.ParseUint(f, 0, 64)
			if err != nil {
				fatal(fmt.Errorf("bad test input %q", f))
			}
			in = append(in, v)
		}
		suite = append(suite, in)
	}

	opt := redfat.Defaults()
	opt.CheckReads = *reads
	opt.SizeCheck = *size

	var (
		hard  *redfat.Binary
		allow redfat.AllowList
		rep   *redfat.Report
		err2  error
	)
	if *fuzzRuns > 0 {
		hard, allow, rep, err2 = fuzzBoostedWorkflow(bin, suite, opt, *fuzzRuns)
	} else {
		hard, allow, rep, err2 = redfat.ProfileAndHarden(bin, suite, opt)
	}
	if err2 != nil {
		fatal(err2)
	}
	if err := redfat.SaveAllowList(allow, *allowOut); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d allow-listed sites from %d test runs\n",
		*allowOut, len(allow), len(suite))
	if *hardenOut != "" {
		if err := redfat.SaveBinary(hard, *hardenOut); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d checks (%d full, %d redzone-only)\n",
			*hardenOut, rep.Checks, rep.FullChecks, rep.Checks-rep.FullChecks)
	}
}

// fuzzBoostedWorkflow is the Fig. 5 workflow with an E9AFL-style
// coverage-guided boost of the profiling phase (paper §5).
func fuzzBoostedWorkflow(bin *redfat.Binary, suite [][]uint64,
	opt redfat.Options, runs int) (*redfat.Binary, redfat.AllowList, *redfat.Report, error) {
	profOpt := opt
	profOpt.Profile = true
	profOpt.Merge = false
	profOpt.CheckReads = true
	profBin, _, err := redfat.Harden(bin, profOpt)
	if err != nil {
		return nil, nil, nil, err
	}
	res, err := fuzz.Boost(profBin, suite, fuzz.Options{MaxRuns: runs})
	if err != nil {
		return nil, nil, nil, err
	}
	fmt.Printf("fuzzing: %d runs, coverage %d → %d sites, corpus %d\n",
		res.Runs, res.SeedSites, res.SitesCovered, len(res.Corpus))
	allow := res.Profiler.AllowList()
	prodOpt := opt
	prodOpt.AllowList = allow
	hard, rep, err := redfat.Harden(bin, prodOpt)
	return hard, allow, rep, err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rfprofile:", err)
	os.Exit(1)
}
