// rfvet is the project-specific static checker, wired into `make check`
// alongside `go vet`. It is built on the standard library's go/parser
// and go/types only (no external analysis framework) and enforces two
// repo conventions that ordinary vet cannot see:
//
//   - telemetry-name: every metric name passed as a string literal to
//     telemetry Registry Counter/Gauge/Histogram must be a lowercase
//     dotted path of two to five segments following the
//     <pkg>.<noun>.<verb> convention (five allows reason-split series
//     like vm.jit.deopt.<reason>.count), and all metrics registered by
//     one package must share a single root segment (e.g. all of
//     internal/vm registers under "vm.").
//
//   - map-emit: table and report emitters must not write output from
//     inside a `range` over a map — map iteration order is randomized,
//     so any fmt/io emission inside such a loop makes the artifact
//     nondeterministic. The accepted idiom is collect-keys → sort →
//     iterate the slice; collect-only map loops are therefore fine.
//     The same rule covers the runpack Builder's member-adding methods
//     (AddBytes/AddJSON): member insertion order is part of a runpack's
//     signed digest chain, so adding members from inside a map range
//     would make the sealed manifest nondeterministic. It also covers
//     the obs layer's emitters (Flight.Record, Server.Publish): flight
//     rings are byte-compared across runs and sealed into runpacks, and
//     published server states feed golden-tested endpoints, so feeding
//     either from a map range would break their determinism contracts.
//
//   - cfg-unknown: any function that walks Block.Succs on the cfg
//     Block type must acknowledge Unknown blocks. An Unknown block's
//     successor set is ⊤ (an unmodeled indirect transfer) but its
//     recorded Succs slice is empty, so a plain successor walk silently
//     treats ⊤ as ∅ — exactly the unsoundness the indirect-flow
//     recovery exists to shrink, not hide. Accepted acknowledgments:
//     the same function references .Unknown, or .Entry/.Entries (the
//     virtual-root construction that makes every block — including
//     Unknown targets — reachable, which is how the dominator and
//     availability solvers stay conservative), or a comment in or on
//     the function contains the word "Unknown" explaining why ⊤ is
//     safe there.
//
// Test files are exempt from all rules. Exit status is 1 when any
// issue is found, 2 when the module cannot be loaded.
package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type issue struct {
	pos token.Position
	msg string
}

type vetter struct {
	fset    *token.FileSet
	root    string // module root directory
	modPath string // module path from go.mod
	std     types.Importer
	cache   map[string]*types.Package
	issues  []issue
}

func main() {
	root, modPath, err := findModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfvet:", err)
		os.Exit(2)
	}
	fset := token.NewFileSet()
	v := &vetter{
		fset:    fset,
		root:    root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   map[string]*types.Package{},
	}
	dirs, err := packageDirs(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfvet:", err)
		os.Exit(2)
	}
	for _, dir := range dirs {
		if err := v.vetDir(dir); err != nil {
			fmt.Fprintf(os.Stderr, "rfvet: %s: %v\n", dir, err)
			os.Exit(2)
		}
	}
	sort.Slice(v.issues, func(i, j int) bool {
		a, b := v.issues[i].pos, v.issues[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, is := range v.issues {
		fmt.Printf("%s: %s\n", is.pos, is.msg)
	}
	if len(v.issues) > 0 {
		os.Exit(1)
	}
}

// findModule locates go.mod upward from the working directory and
// returns the module root and module path.
func findModule() (string, string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found")
		}
		dir = parent
	}
}

// packageDirs lists every directory under root that contains Go files,
// skipping hidden directories, testdata, and build outputs.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "results") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// Import resolves module-local packages by type-checking their sources
// and delegates everything else to the standard-library source importer.
func (v *vetter) Import(path string) (*types.Package, error) {
	if pkg, ok := v.cache[path]; ok {
		return pkg, nil
	}
	if path == v.modPath || strings.HasPrefix(path, v.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, v.modPath), "/")
		pkg, _, err := v.check(filepath.Join(v.root, rel), path)
		if err != nil {
			return nil, err
		}
		v.cache[path] = pkg
		return pkg, nil
	}
	pkg, err := v.std.Import(path)
	if err != nil {
		return nil, err
	}
	v.cache[path] = pkg
	return pkg, nil
}

// check parses and type-checks the non-test files of one directory.
func (v *vetter) check(dir, pkgPath string) (*types.Package, *pkgFiles, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	pf := &pkgFiles{info: &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(v.fset, filepath.Join(dir, name), nil,
			parser.SkipObjectResolution|parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		pf.files = append(pf.files, f)
	}
	if len(pf.files) == 0 {
		return nil, nil, fmt.Errorf("no buildable Go files")
	}
	conf := types.Config{Importer: v}
	pkg, err := conf.Check(pkgPath, v.fset, pf.files, pf.info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, pf, nil
}

type pkgFiles struct {
	files []*ast.File
	info  *types.Info
}

// vetDir type-checks one package directory and applies both rules.
func (v *vetter) vetDir(dir string) error {
	rel, err := filepath.Rel(v.root, dir)
	if err != nil {
		return err
	}
	pkgPath := v.modPath
	if rel != "." {
		pkgPath = v.modPath + "/" + filepath.ToSlash(rel)
	}
	var pf *pkgFiles
	if _, ok := v.cache[pkgPath]; ok {
		// Already type-checked as a dependency, but the rule pass needs
		// the syntax and info maps, so check again (cached imports make
		// this cheap).
		_, pf, err = v.check(dir, pkgPath)
	} else {
		var pkg *types.Package
		pkg, pf, err = v.check(dir, pkgPath)
		if err == nil {
			v.cache[pkgPath] = pkg
		}
	}
	if err != nil {
		return err
	}
	v.checkTelemetryNames(pf)
	v.checkMapEmit(pf)
	v.checkCFGUnknown(pf)
	return nil
}

func (v *vetter) report(pos token.Pos, format string, args ...any) {
	v.issues = append(v.issues, issue{v.fset.Position(pos), fmt.Sprintf(format, args...)})
}

var (
	metricMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}
	segmentRE     = regexp.MustCompile(`^[a-z][a-z0-9]*$`)
)

// checkTelemetryNames enforces the metric naming convention on every
// literal name registered with the telemetry Registry. Dynamically
// composed names (string concatenation) are out of scope.
func (v *vetter) checkTelemetryNames(pf *pkgFiles) {
	roots := map[string]token.Pos{}
	for _, f := range pf.files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !metricMethods[sel.Sel.Name] || !v.isRegistry(pf, sel.X) {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			segs := strings.Split(name, ".")
			if len(segs) < 2 || len(segs) > 5 {
				v.report(lit.Pos(), "telemetry-name: %q has %d segments, want 2-5 (<pkg>.<noun>.<verb>)",
					name, len(segs))
				return true
			}
			for _, s := range segs {
				if !segmentRE.MatchString(s) {
					v.report(lit.Pos(), "telemetry-name: %q segment %q is not lowercase [a-z][a-z0-9]*",
						name, s)
					return true
				}
			}
			roots[segs[0]] = lit.Pos()
			return true
		})
	}
	if len(roots) > 1 {
		var all []string
		for r := range roots {
			all = append(all, r)
		}
		sort.Strings(all)
		v.report(roots[all[1]], "telemetry-name: package registers metrics under multiple roots %v; pick one",
			all)
	}
}

// isRegistry reports whether expr has the telemetry Registry type (or a
// pointer to it). With missing type information it falls back to the
// conservative syntactic answer true, so a broken importer surfaces as
// extra findings rather than silence.
func (v *vetter) isRegistry(pf *pkgFiles, expr ast.Expr) bool {
	tv, ok := pf.info.Types[expr]
	if !ok || tv.Type == nil {
		return true
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == "Registry" && strings.HasSuffix(n.Obj().Pkg().Path(), "internal/telemetry")
}

// isPackBuilder reports whether fun is a selector on the runpack Builder
// type (or a pointer to it). Like isRegistry, missing type information
// falls back to the conservative answer true.
func (v *vetter) isPackBuilder(pf *pkgFiles, fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := pf.info.Types[sel.X]
	if !ok || tv.Type == nil {
		return true
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == "Builder" && strings.HasSuffix(n.Obj().Pkg().Path(), "internal/runpack")
}

// emitCalls are methods/functions whose invocation inside a map-range
// body means iteration order reaches an output stream.
var emitCalls = map[string]bool{
	"Fprintf": true, "Fprintln": true, "Fprint": true,
	"Printf": true, "Println": true, "Print": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true,
}

// packCalls are runpack Builder methods that append pack members. Member
// order is part of the signed digest chain, so these are held to the same
// no-map-iteration rule as output emitters.
var packCalls = map[string]bool{
	"AddBytes": true, "AddJSON": true,
}

// obsCalls are obs-layer emitters. Flight rings are byte-compared across
// runs and sealed into runpacks; published server states back the
// golden-tested endpoints. Both must never be fed from a map range.
var obsCalls = map[string]bool{
	"Record": true, "Publish": true,
}

// isObsEmitter reports whether fun is a selector on the obs Flight or
// Server type (or a pointer to either). Like isRegistry, missing type
// information falls back to the conservative answer true.
func (v *vetter) isObsEmitter(pf *pkgFiles, fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := pf.info.Types[sel.X]
	if !ok || tv.Type == nil {
		return true
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	name := n.Obj().Name()
	return (name == "Flight" || name == "Server") &&
		strings.HasSuffix(n.Obj().Pkg().Path(), "internal/obs")
}

// checkMapEmit flags emission from inside a range over a map, anywhere
// in the package: collect-then-sort loops have no emit call in the body
// and pass untouched.
func (v *vetter) checkMapEmit(pf *pkgFiles) {
	for _, f := range pf.files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pf.info.Types[rng.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			ast.Inspect(rng.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				var name string
				switch fun := call.Fun.(type) {
				case *ast.SelectorExpr:
					name = fun.Sel.Name
				case *ast.Ident:
					name = fun.Name
				}
				if emitCalls[name] {
					v.report(call.Pos(),
						"map-emit: %s inside a range over a map emits in nondeterministic order; collect keys, sort, then emit",
						name)
				} else if packCalls[name] && v.isPackBuilder(pf, call.Fun) {
					v.report(call.Pos(),
						"map-emit: runpack %s inside a range over a map packs members in nondeterministic order; collect keys, sort, then add",
						name)
				} else if obsCalls[name] && v.isObsEmitter(pf, call.Fun) {
					v.report(call.Pos(),
						"map-emit: obs %s inside a range over a map emits in nondeterministic order; collect keys, sort, then emit",
						name)
				}
				return true
			})
			return true
		})
	}
}

// isCFGBlock reports whether expr has the cfg Block type (or a pointer
// to it). Like isRegistry, missing type information falls back to the
// conservative answer true.
func (v *vetter) isCFGBlock(pf *pkgFiles, expr ast.Expr) bool {
	tv, ok := pf.info.Types[expr]
	if !ok || tv.Type == nil {
		return true
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == "Block" && strings.HasSuffix(n.Obj().Pkg().Path(), "internal/cfg")
}

// checkCFGUnknown flags functions that read Block.Succs without
// acknowledging Unknown blocks anywhere in the same function: an
// Unknown block records no successors, so an unacknowledged walk treats
// ⊤ as ∅. Referencing .Unknown, .Entry, or .Entries counts (the latter
// two because the virtual-root entry set is how whole-graph solvers
// stay conservative under Unknown flow), as does a comment containing
// "Unknown" in or on the function.
func (v *vetter) checkCFGUnknown(pf *pkgFiles) {
	for _, f := range pf.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			succsPos := token.NoPos
			acknowledged := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch sel.Sel.Name {
				case "Succs":
					if succsPos == token.NoPos && v.isCFGBlock(pf, sel.X) {
						succsPos = sel.Pos()
					}
				case "Unknown", "Entry", "Entries":
					acknowledged = true
				}
				return true
			})
			if succsPos == token.NoPos || acknowledged || mentionsUnknown(f, fd) {
				continue
			}
			v.report(succsPos,
				"cfg-unknown: %s walks Block.Succs without acknowledging Unknown blocks (⊤ has no recorded successors); check .Unknown, seed from Entries, or document why ⊤ is safe here",
				fd.Name.Name)
		}
	}
}

// mentionsUnknown reports whether the function's doc comment or any
// comment inside its body contains the word "Unknown".
func mentionsUnknown(f *ast.File, fd *ast.FuncDecl) bool {
	if fd.Doc != nil && strings.Contains(fd.Doc.Text(), "Unknown") {
		return true
	}
	for _, cg := range f.Comments {
		if cg.Pos() >= fd.Pos() && cg.End() <= fd.End() && strings.Contains(cg.Text(), "Unknown") {
			return true
		}
	}
	return false
}
