package main

import (
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a synthetic module and returns a vetter rooted
// at it. The module carries its own minimal telemetry package so the
// Registry type check is exercised for real.
func writeTree(t *testing.T, files map[string]string) *vetter {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	files["internal/telemetry/telemetry.go"] = `package telemetry
type Registry struct{}
type Counter struct{}
type Gauge struct{}
type Histogram struct{}
func (r *Registry) Counter(name string) *Counter { return nil }
func (r *Registry) Gauge(name string) *Gauge { return nil }
func (r *Registry) Histogram(name string) *Histogram { return nil }
`
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	fset := token.NewFileSet()
	return &vetter{
		fset:    fset,
		root:    root,
		modPath: "tmpmod",
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   map[string]*types.Package{},
	}
}

func runVet(t *testing.T, v *vetter) []string {
	t.Helper()
	dirs, err := packageDirs(v.root)
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		if err := v.vetDir(dir); err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
	}
	var msgs []string
	for _, is := range v.issues {
		msgs = append(msgs, is.msg)
	}
	return msgs
}

func wantIssue(t *testing.T, msgs []string, substr string) {
	t.Helper()
	for _, m := range msgs {
		if strings.Contains(m, substr) {
			return
		}
	}
	t.Errorf("no issue containing %q in %v", substr, msgs)
}

func TestTelemetryNameRules(t *testing.T) {
	v := writeTree(t, map[string]string{
		"internal/sub/sub.go": `package sub
import "tmpmod/internal/telemetry"
func setup(reg *telemetry.Registry) {
	reg.Counter("sub.ops.count")        // ok
	reg.Histogram("sub.jit.deopt.side.count") // ok: 5 segments (reason-split series)
	reg.Gauge("singlesegment")          // bad: 1 segment
	reg.Histogram("sub.a.b.c.d.e")      // bad: 6 segments
	reg.Counter("sub.BadCase.count")    // bad: uppercase segment
	reg.Counter("other.ops.count")      // bad: second root in this package
	reg.Counter("sub.dyn." + "suffix")  // skipped: not a literal
}
`,
	})
	msgs := runVet(t, v)
	wantIssue(t, msgs, `"singlesegment" has 1 segments`)
	wantIssue(t, msgs, `"sub.a.b.c.d.e" has 6 segments`)
	wantIssue(t, msgs, `segment "BadCase" is not lowercase`)
	wantIssue(t, msgs, "multiple roots [other sub]")
	if len(msgs) != 4 {
		t.Errorf("want exactly 4 issues, got %d: %v", len(msgs), msgs)
	}
}

// TestTelemetryNameCoversLibcSpanCounters pins the rule to the libc
// span-check series: the shipped vm.libc.span.{check,fail}.count names
// must pass as-is (5 segments, one "vm" root), and near-miss variants a
// refactor could plausibly introduce must still be flagged.
func TestTelemetryNameCoversLibcSpanCounters(t *testing.T) {
	v := writeTree(t, map[string]string{
		"internal/vmx/vmx.go": `package vmx
import "tmpmod/internal/telemetry"
func setup(reg *telemetry.Registry) {
	reg.Counter("vm.libc.span.check.count")    // ok: shipped name
	reg.Counter("vm.libc.span.fail.count")     // ok: shipped name
	reg.Counter("vm.libc.span.fail.oob.count") // bad: 6 segments
	reg.Counter("libc.span.check.count")       // bad: second root in this package
}
`,
	})
	msgs := runVet(t, v)
	wantIssue(t, msgs, `"vm.libc.span.fail.oob.count" has 6 segments`)
	wantIssue(t, msgs, "multiple roots [libc vm]")
	if len(msgs) != 2 {
		t.Errorf("want exactly 2 issues, got %d: %v", len(msgs), msgs)
	}
}

func TestTelemetryNameIgnoresOtherTypes(t *testing.T) {
	v := writeTree(t, map[string]string{
		"internal/sub/sub.go": `package sub
type fake struct{}
func (fake) Counter(name string) int { return 0 }
func setup() {
	var f fake
	_ = f.Counter("not a metric name at all")
}
`,
	})
	if msgs := runVet(t, v); len(msgs) != 0 {
		t.Errorf("non-Registry Counter flagged: %v", msgs)
	}
}

func TestMapEmitRule(t *testing.T) {
	v := writeTree(t, map[string]string{
		"internal/rep/rep.go": `package rep
import (
	"fmt"
	"io"
	"sort"
)
func RenderBad(w io.Writer, m map[string]int) {
	for k, n := range m {
		fmt.Fprintf(w, "%s %d\n", k, n) // nondeterministic
	}
}
func RenderGood(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m { // collect-only: allowed
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s %d\n", k, m[k])
	}
}
func sliceLoop(w io.Writer, xs []int) {
	for _, x := range xs {
		fmt.Fprintln(w, x) // slices are ordered: allowed
	}
}
`,
	})
	msgs := runVet(t, v)
	wantIssue(t, msgs, "map-emit: Fprintf inside a range over a map")
	if len(msgs) != 1 {
		t.Errorf("want exactly 1 issue, got %d: %v", len(msgs), msgs)
	}
}

func TestMapEmitRuleCoversObsEmitters(t *testing.T) {
	v := writeTree(t, map[string]string{
		"internal/obs/obs.go": `package obs
type Flight struct{}
func (f *Flight) Record(kind, reason uint8, pc, arg uint64) {}
type Server struct{}
type State struct{}
func (s *Server) Publish(st *State) {}
`,
		"internal/emit/emit.go": `package emit
import (
	"sort"
	"tmpmod/internal/obs"
)
func RecordBad(f *obs.Flight, m map[uint64]uint64) {
	for pc, arg := range m {
		f.Record(0, 0, pc, arg) // ring content would be nondeterministic
	}
}
func PublishBad(s *obs.Server, m map[string]*obs.State) {
	for _, st := range m {
		s.Publish(st) // last-published state would be nondeterministic
	}
}
func RecordGood(f *obs.Flight, m map[uint64]uint64) {
	pcs := make([]uint64, 0, len(m))
	for pc := range m { // collect-only: allowed
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	for _, pc := range pcs {
		f.Record(0, 0, pc, m[pc])
	}
}
type other struct{}
func (other) Record(kind, reason uint8, pc, arg uint64) {}
func otherType(m map[uint64]uint64) {
	var o other
	for pc := range m {
		o.Record(0, 0, pc, 0) // not an obs emitter: allowed
	}
}
`,
	})
	msgs := runVet(t, v)
	wantIssue(t, msgs, "map-emit: obs Record inside a range over a map")
	wantIssue(t, msgs, "map-emit: obs Publish inside a range over a map")
	if len(msgs) != 2 {
		t.Errorf("want exactly 2 issues, got %d: %v", len(msgs), msgs)
	}
}

func TestMapEmitRuleCoversRunpackBuilder(t *testing.T) {
	v := writeTree(t, map[string]string{
		"internal/runpack/runpack.go": `package runpack
type Builder struct{}
func (b *Builder) AddBytes(name string, data []byte) {}
func (b *Builder) AddJSON(name string, v any) {}
`,
		"internal/emit/emit.go": `package emit
import (
	"sort"
	"tmpmod/internal/runpack"
)
func PackBad(b *runpack.Builder, m map[string][]byte) {
	for name, data := range m {
		b.AddBytes(name, data) // member order would be nondeterministic
	}
}
func PackGood(b *runpack.Builder, m map[string][]byte) {
	names := make([]string, 0, len(m))
	for name := range m { // collect-only: allowed
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b.AddBytes(name, m[name])
	}
}
type other struct{}
func (other) AddBytes(name string, data []byte) {}
func otherType(m map[string]int) {
	var o other
	for k := range m {
		o.AddBytes(k, nil) // not the runpack Builder: allowed
	}
}
`,
	})
	msgs := runVet(t, v)
	wantIssue(t, msgs, "map-emit: runpack AddBytes inside a range over a map")
	if len(msgs) != 1 {
		t.Errorf("want exactly 1 issue, got %d: %v", len(msgs), msgs)
	}
}

// TestCFGUnknownRule pins the cfg-unknown rule: walking Block.Succs
// without acknowledging Unknown blocks is flagged, while each accepted
// acknowledgment form (.Unknown check, Entries seeding, an explanatory
// comment) and non-cfg Block types pass untouched.
func TestCFGUnknownRule(t *testing.T) {
	v := writeTree(t, map[string]string{
		"internal/cfg/cfg.go": `package cfg
type Block struct {
	Succs   []int
	Preds   []int
	Unknown bool
	Entry   bool
}
type Graph struct {
	Blocks  []Block
	Entries []int
}
`,
		"internal/use/use.go": `package use
import "tmpmod/internal/cfg"
func badWalk(g *cfg.Graph) int { // flagged: treats the empty Succs of a top block as proven
	n := 0
	for b := range g.Blocks {
		n += len(g.Blocks[b].Succs)
	}
	return n
}
func goodCheck(g *cfg.Graph) int {
	n := 0
	for b := range g.Blocks {
		if g.Blocks[b].Unknown {
			continue
		}
		n += len(g.Blocks[b].Succs)
	}
	return n
}
func goodEntries(g *cfg.Graph) []int {
	work := append([]int(nil), g.Entries...)
	for _, b := range work {
		work = append(work, g.Blocks[b].Succs...)
	}
	return work
}
// goodDoc only counts proven edges; Unknown blocks contribute none,
// which is fine for a lower bound.
func goodDoc(g *cfg.Graph) int {
	n := 0
	for b := range g.Blocks {
		n += len(g.Blocks[b].Succs)
	}
	return n
}
func goodBodyComment(g *cfg.Graph) int {
	n := 0
	for b := range g.Blocks {
		// Unknown blocks record no successors; a lower bound is fine here.
		n += len(g.Blocks[b].Succs)
	}
	return n
}
type other struct{ Succs []int }
func otherType(xs []other) int { // not the cfg Block: allowed
	n := 0
	for i := range xs {
		n += len(xs[i].Succs)
	}
	return n
}
`,
	})
	msgs := runVet(t, v)
	wantIssue(t, msgs, "cfg-unknown: badWalk walks Block.Succs")
	if len(msgs) != 1 {
		t.Errorf("want exactly 1 issue, got %d: %v", len(msgs), msgs)
	}
}
