// rfverify is the standalone translation validator: it checks that a
// hardened RELF binary is a faithful rewriting of its original.
//
// Usage:
//
//	rfverify -orig prog.relf prog.hard.relf   full validation
//	rfverify prog.hard.relf                   structural checks only
//	rfverify -edges prog.relf                 indirect-edge audit only
//
// With -orig, every patched site is round-tripped through its
// trampoline, byte stealing is audited against recovered jump targets,
// trampoline save sets are compared with a whole-CFG liveness solution,
// every operand the recorded policy selects must be protected by a
// check, and — for marker-built originals — every recovered indirect
// edge is independently re-derived. Without -orig only the metadata and
// trampoline structure can be checked. With -edges the argument is an
// ORIGINAL (unhardened) marker-built binary and only the indirect-flow
// recovery is audited against its own claims. Neither binary is
// executed. Exit status 1 means the binary failed validation; 2 means
// the inputs were unusable.
package main

import (
	"flag"
	"fmt"
	"os"

	"redfat"
)

func main() {
	orig := flag.String("orig", "", "original (pre-hardening) binary for full validation")
	edges := flag.Bool("edges", false, "audit only the indirect-flow recovery of an ORIGINAL marker-built binary")
	quiet := flag.Bool("q", false, "suppress the summary line; violations only")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: rfverify [-orig original.relf | -edges] binary.relf")
		os.Exit(2)
	}

	hard, err := redfat.LoadBinary(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfverify:", err)
		os.Exit(2)
	}
	var rep *redfat.VerifyReport
	if *edges {
		rep, err = redfat.VerifyEdges(hard)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rfverify:", err)
			os.Exit(2)
		}
	} else if *orig != "" {
		ob, err := redfat.LoadBinary(*orig)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rfverify:", err)
			os.Exit(2)
		}
		rep, err = redfat.VerifyHardened(ob, hard)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rfverify:", err)
			os.Exit(2)
		}
	} else {
		rep, err = redfat.VerifyStructural(hard)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rfverify:", err)
			os.Exit(2)
		}
	}
	if !*quiet || !rep.OK() {
		rep.Render(os.Stdout)
	}
	if !rep.OK() {
		os.Exit(1)
	}
}
