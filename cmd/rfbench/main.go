// rfbench regenerates the paper's evaluation tables and figures (§7).
//
// Usage:
//
//	rfbench -table1 [-scale 1.0]   SPEC CPU2006 slow-downs (Table 1)
//	rfbench -falsepos              false positives without the allow-list (§7.1)
//	rfbench -table2                CVE + Juliet detection (Table 2)
//	rfbench -figure8               Chrome/Kraken overhead (Figure 8)
//	rfbench -ablation              patch tactics and batch-width ablations
//	rfbench -hostbench             host wall-clock benchmarks (VM dispatch, pool scaling)
//	rfbench -all                   everything except -hostbench
//
// Experiments fan their independent units (benchmark × configuration
// cells, Juliet cases, Kraken sub-benchmarks) over a worker pool of
// -parallel goroutines; results are assembled deterministically, so the
// tables are byte-identical at any -parallel value. -progress=false
// silences the per-unit progress lines on stderr.
//
// -json path additionally writes every experiment that ran as a single
// structured JSON document (see internal/bench.Results), including the
// aggregate telemetry snapshot, so downstream tooling can consume the
// numbers without scraping the text tables.
//
// -cpuprofile / -memprofile write pprof profiles of the harness itself
// (host-side performance, not guest cycles).
//
// Run artifacts and bench trajectory:
//
//	-runpack DIR   capture the run's results JSON as a digest-signed
//	               runpack (verify with `rfpack verify`; DESIGN.md §13)
//	-history DIR   append this run to the bench trajectory as
//	               DIR/BENCH_<rev>.json (rev from -rev or the build's VCS
//	               stamp); see results/history/
//	-baseline P    load a prior results JSON (a BENCH_*.json file, or a
//	               runpack directory/tarball) and report per-section
//	               deltas; -regress sets the noise threshold (default
//	               ±10%), and regressions warn unless -regress-fail
package main

import (
	"bytes"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"redfat/internal/bench"
	"redfat/internal/obs"
	"redfat/internal/runpack"
	"redfat/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rfbench:", err)
		os.Exit(1)
	}
}

func run() error {
	table1 := flag.Bool("table1", false, "run the SPEC CPU2006 performance table")
	falsepos := flag.Bool("falsepos", false, "run the false-positive experiment")
	table2 := flag.Bool("table2", false, "run the non-incremental detection table")
	figure8 := flag.Bool("figure8", false, "run the Chrome/Kraken experiment")
	ablation := flag.Bool("ablation", false, "run the ablation studies")
	hostbench := flag.Bool("hostbench", false, "run the host wall-clock benchmarks")
	guestprof := flag.Bool("guestprof", false, "profile guest execution per benchmark (hot sites + folded stacks)")
	guestprofDir := flag.String("guestprofdir", filepath.Join("results", "guestprof"),
		"output directory for -guestprof folded-stack files (empty = don't write)")
	all := flag.Bool("all", false, "run every experiment (except -hostbench)")
	scale := flag.Float64("scale", 1.0, "workload scale for table1/falsepos (1.0 = full ref)")
	fillers := flag.Int("fillers", 20000, "filler functions in the Chrome-scale image")
	kscale := flag.Uint64("kscale", 5000, "Kraken workload scale")
	parallel := flag.Int("parallel", bench.DefaultParallel(), "worker-pool width for experiment units")
	progress := flag.Bool("progress", true, "print per-unit progress lines to stderr")
	jsonPath := flag.String("json", "", "write the results of every experiment run as JSON to this file")
	hostbenchOut := flag.String("hostbenchout", filepath.Join("results", "BENCH_host.json"),
		"output path for -hostbench results")
	hostbenchScale := flag.Float64("hostbenchscale", 0.02, "table1 scale for -hostbench")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the harness to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile of the harness to this file")
	packDir := flag.String("runpack", "", "capture the results JSON as a digest-signed runpack in this directory")
	historyDir := flag.String("history", "", "append this run to the bench trajectory as DIR/BENCH_<rev>.json")
	rev := flag.String("rev", "", "revision tag for -history file naming (default: the build's VCS stamp)")
	baseline := flag.String("baseline", "", "compare against a prior results JSON (BENCH_*.json file or runpack)")
	regress := flag.Float64("regress", bench.DefaultRegressThreshold, "relative regression threshold for -baseline")
	regressFail := flag.Bool("regress-fail", false, "with -baseline, exit nonzero when a delta exceeds the threshold")
	listen := flag.String("listen", "", "serve live introspection HTTP (/metrics /snapshot ...) on ADDR during and after the run, until killed")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rfbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "rfbench:", err)
			}
		}()
	}

	h := &bench.Harness{Parallel: *parallel}
	if *progress {
		h.Progress = os.Stderr
	}

	ran := false
	w := os.Stdout
	results := &bench.Results{Scale: *scale}
	// Open the JSON sink up front so a bad path fails before hours of
	// experiments, not after. The JSON document also carries the aggregate
	// telemetry snapshot, so only collect metrics when some consumer
	// (-json, -runpack, -history) wants the document.
	var jsonFile *os.File
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		jsonFile = f
	}
	needDoc := *jsonPath != "" || *packDir != "" || *historyDir != ""
	if needDoc || *listen != "" {
		h.Metrics = telemetry.New()
	}
	// Bind the introspection listener up front so a bad -listen address
	// fails before hours of experiments, and start serving immediately —
	// mid-run scrapes answer with the empty pre-run snapshot instead of
	// hanging in the accept backlog until the experiments finish.
	var obsSrv *obs.Server
	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			return err
		}
		obsSrv = obs.NewServer()
		fmt.Fprintf(os.Stderr, "rfbench: listening on http://%s\n", ln.Addr())
		go func() {
			if serr := obs.Serve(ln, obsSrv); serr != nil {
				fmt.Fprintln(os.Stderr, "rfbench: introspection server:", serr)
			}
		}()
	}
	// Load the baseline up front too: a bad -baseline path should not cost
	// a full experiment run before failing.
	var base *bench.Results
	if *baseline != "" {
		b, err := loadBaseline(*baseline)
		if err != nil {
			return err
		}
		base = b
	}
	if *all || *table1 {
		ran = true
		fmt.Fprintf(w, "=== Table 1: SPEC CPU2006 (scale %.2f) ===\n", *scale)
		fmt.Fprintf(w, "%-12s %7s %12s %9s %9s %9s %9s %9s %9s %9s %9s %9s\n",
			"benchmark", "cover", "baseline", "unopt", "+elim", "+batch",
			"+merge", "+dom", "+ind", "-size", "-reads", "memcheck")
		rows, err := h.Table1(*scale, w)
		if err != nil {
			return err
		}
		summary := bench.Summarize(rows)
		results.Table1, results.Table1Summary = rows, &summary
		fmt.Fprintln(w)
	}
	if *all || *falsepos {
		ran = true
		fmt.Fprintln(w, "=== §7.1 False positives (full checking, no allow-list) ===")
		rows, err := h.FalsePositives(*scale, w)
		if err != nil {
			return err
		}
		results.FalsePositives = rows
		fmt.Fprintln(w)
	}
	if *all || *table2 {
		ran = true
		fmt.Fprintln(w, "=== Table 2: non-incremental bounds errors ===")
		rows, err := h.Table2(w)
		if err != nil {
			return err
		}
		results.Table2 = rows
		fmt.Fprintln(w, "--- extension: temporal errors (ours) ---")
		ext, err := h.Table2Extended(w)
		if err != nil {
			return err
		}
		results.Table2Extended = ext
		fmt.Fprintln(w)
	}
	if *all || *figure8 {
		ran = true
		fmt.Fprintf(w, "=== Figure 8: Chrome/Kraken, write protection (%d fillers) ===\n", *fillers)
		rows, gm, err := h.Figure8(*fillers, *kscale, w)
		if err != nil {
			return err
		}
		results.Figure8 = &bench.Figure8Result{Rows: rows, GeoMean: gm}
		fmt.Fprintln(w)
	}
	if *all || *ablation {
		ran = true
		abl := &bench.Ablations{}
		fmt.Fprintln(w, "=== Ablation: patch tactics ===")
		tactics, err := h.Tactics(*fillers, w)
		if err != nil {
			return err
		}
		abl.Tactics = tactics
		fmt.Fprintln(w, "\n=== Ablation: batch width (povray) ===")
		batches, err := h.BatchSweep("povray", *scale, w)
		if err != nil {
			return err
		}
		abl.Batch = batches
		fmt.Fprintln(w, "\n=== Ablation: clobber specialization (sjeng) ===")
		clobber, err := h.ClobberSweep("sjeng", *scale, w)
		if err != nil {
			return err
		}
		abl.Clobber = clobber
		fmt.Fprintln(w, "\n=== Ablation: dataflow engine (full suite) ===")
		dflow, err := h.DataflowSweep(nil, *scale, w)
		if err != nil {
			return err
		}
		abl.Dataflow = dflow
		fmt.Fprintln(w, "\n=== Ablation: indirect-flow recovery (switch-dense suite) ===")
		ind, err := h.IndirectSweep(nil, *scale, w)
		if err != nil {
			return err
		}
		abl.Indirect = ind
		fmt.Fprintln(w, "\n=== Ablation: coverage-guided profiling boost (h264ref) ===")
		fz, err := h.FuzzBoostStudy("h264ref", []int{1, 50, 200}, w)
		if err != nil {
			return err
		}
		abl.Fuzz = fz
		results.Ablation = abl
		fmt.Fprintln(w)
	}
	if *guestprof {
		ran = true
		fmt.Fprintf(w, "=== Guest profiles (scale %.2f, production config) ===\n", *scale)
		rows, err := h.GuestProfiles(*scale, *guestprofDir, w)
		if err != nil {
			return err
		}
		results.GuestProfiles = rows
		if *guestprofDir != "" {
			fmt.Fprintf(w, "folded stacks written to %s%c<benchmark>.folded\n",
				*guestprofDir, os.PathSeparator)
		}
		fmt.Fprintln(w)
	}
	if *hostbench {
		ran = true
		fmt.Fprintf(w, "=== Host benchmarks (parallel %d, table1 scale %.2f) ===\n",
			*parallel, *hostbenchScale)
		hb, err := bench.RunHostBench(*parallel, *hostbenchScale)
		if err != nil {
			return err
		}
		hb.Render(w)
		if err := os.MkdirAll(filepath.Dir(*hostbenchOut), 0o755); err != nil {
			return err
		}
		f, err := os.Create(*hostbenchOut)
		if err != nil {
			return err
		}
		if err := hb.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "host benchmark results written to %s\n", *hostbenchOut)
		fmt.Fprintln(w)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	var doc []byte
	if needDoc {
		results.Telemetry = h.Metrics.Snapshot()
		d, err := results.MarshalJSONBytes()
		if err != nil {
			return err
		}
		doc = d
	}
	if jsonFile != nil {
		if _, err := jsonFile.Write(doc); err != nil {
			return err
		}
		if err := jsonFile.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "results written to %s\n", *jsonPath)
	}
	if *packDir != "" {
		if err := runpack.PackBench(*packDir, os.Args[1:], doc); err != nil {
			return err
		}
		fmt.Fprintf(w, "runpack written to %s\n", *packDir)
	}
	if *historyDir != "" {
		path, err := writeHistory(*historyDir, *rev, doc)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "bench trajectory entry written to %s\n", path)
	}
	if base != nil {
		fmt.Fprintf(w, "=== Trajectory vs %s ===\n", *baseline)
		traj := bench.Compare(results, base, *regress)
		if err := traj.Render(w); err != nil {
			return err
		}
		if n := len(traj.Regressions()); n > 0 && *regressFail {
			return fmt.Errorf("%d metric(s) regressed beyond ±%.1f%% of %s",
				n, *regress*100, *baseline)
		}
	}
	if obsSrv != nil {
		// Publish the aggregate snapshot (host wall-clock series stripped,
		// so scrapes are deterministic) and serve until killed.
		obsSrv.Publish(&obs.State{Telemetry: h.Metrics.Snapshot().StripHostTime()})
		fmt.Fprintln(os.Stderr, "rfbench: run complete; serving introspection until killed")
		select {}
	}
	return nil
}

// loadBaseline reads a prior Results document for -baseline. The path may
// be a plain BENCH_*.json file, or a runpack directory / tarball produced
// by -runpack — the latter is digest-verified before its bench.json member
// is trusted.
func loadBaseline(path string) (*bench.Results, error) {
	fi, statErr := os.Stat(path)
	isPack := (statErr == nil && fi.IsDir()) ||
		strings.HasSuffix(path, ".tgz") || strings.HasSuffix(path, ".tar.gz")
	if isPack {
		p, err := runpack.Open(path)
		if err != nil {
			return nil, err
		}
		man, err := runpack.Verify(p)
		if err != nil {
			return nil, fmt.Errorf("baseline runpack %s: %w", path, err)
		}
		if man.Kind != runpack.KindBench {
			return nil, fmt.Errorf("baseline runpack %s is a %q pack, want %q", path, man.Kind, runpack.KindBench)
		}
		data, err := p.ReadMember(runpack.MemberBench)
		if err != nil {
			return nil, err
		}
		return bench.ParseResults(data)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return bench.ParseResults(data)
}

// writeHistory appends the results document to the trajectory series as
// dir/BENCH_<rev>.json. An existing entry for the same revision is only
// overwritten by identical content: the series is append-only.
func writeHistory(dir, rev string, doc []byte) (string, error) {
	if rev == "" {
		rev = runpack.GitRev()
	}
	if rev == "" {
		rev = "dev"
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+rev+".json")
	if old, err := os.ReadFile(path); err == nil && !bytes.Equal(old, doc) {
		return "", fmt.Errorf("history entry %s already exists with different content (pass -rev to disambiguate)", path)
	}
	return path, os.WriteFile(path, doc, 0o644)
}
