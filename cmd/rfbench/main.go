// rfbench regenerates the paper's evaluation tables and figures (§7).
//
// Usage:
//
//	rfbench -table1 [-scale 1.0]   SPEC CPU2006 slow-downs (Table 1)
//	rfbench -falsepos              false positives without the allow-list (§7.1)
//	rfbench -table2                CVE + Juliet detection (Table 2)
//	rfbench -figure8               Chrome/Kraken overhead (Figure 8)
//	rfbench -ablation              patch tactics and batch-width ablations
//	rfbench -all                   everything
//
// -json path additionally writes every experiment that ran as a single
// structured JSON document (see internal/bench.Results), so downstream
// tooling can consume the numbers without scraping the text tables.
package main

import (
	"flag"
	"fmt"
	"os"

	"redfat/internal/bench"
)

func main() {
	table1 := flag.Bool("table1", false, "run the SPEC CPU2006 performance table")
	falsepos := flag.Bool("falsepos", false, "run the false-positive experiment")
	table2 := flag.Bool("table2", false, "run the non-incremental detection table")
	figure8 := flag.Bool("figure8", false, "run the Chrome/Kraken experiment")
	ablation := flag.Bool("ablation", false, "run the ablation studies")
	all := flag.Bool("all", false, "run every experiment")
	scale := flag.Float64("scale", 1.0, "workload scale for table1/falsepos (1.0 = full ref)")
	fillers := flag.Int("fillers", 20000, "filler functions in the Chrome-scale image")
	kscale := flag.Uint64("kscale", 5000, "Kraken workload scale")
	jsonPath := flag.String("json", "", "write the results of every experiment run as JSON to this file")
	flag.Parse()

	ran := false
	w := os.Stdout
	results := &bench.Results{Scale: *scale}
	// Open the JSON sink up front so a bad path fails before hours of
	// experiments, not after.
	var jsonFile *os.File
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fatal(err)
		}
		jsonFile = f
	}
	if *all || *table1 {
		ran = true
		fmt.Fprintf(w, "=== Table 1: SPEC CPU2006 (scale %.2f) ===\n", *scale)
		fmt.Fprintf(w, "%-12s %7s %12s %9s %9s %9s %9s %9s %9s %9s\n",
			"benchmark", "cover", "baseline", "unopt", "+elim", "+batch",
			"+merge", "-size", "-reads", "memcheck")
		rows, err := bench.Table1(*scale, w)
		if err != nil {
			fatal(err)
		}
		summary := bench.Summarize(rows)
		results.Table1, results.Table1Summary = rows, &summary
		fmt.Fprintln(w)
	}
	if *all || *falsepos {
		ran = true
		fmt.Fprintln(w, "=== §7.1 False positives (full checking, no allow-list) ===")
		rows, err := bench.FalsePositives(*scale, w)
		if err != nil {
			fatal(err)
		}
		results.FalsePositives = rows
		fmt.Fprintln(w)
	}
	if *all || *table2 {
		ran = true
		fmt.Fprintln(w, "=== Table 2: non-incremental bounds errors ===")
		rows, err := bench.Table2(w)
		if err != nil {
			fatal(err)
		}
		results.Table2 = rows
		fmt.Fprintln(w, "--- extension: temporal errors (ours) ---")
		ext, err := bench.Table2Extended(w)
		if err != nil {
			fatal(err)
		}
		results.Table2Extended = ext
		fmt.Fprintln(w)
	}
	if *all || *figure8 {
		ran = true
		fmt.Fprintf(w, "=== Figure 8: Chrome/Kraken, write protection (%d fillers) ===\n", *fillers)
		rows, gm, err := bench.Figure8(*fillers, *kscale, w)
		if err != nil {
			fatal(err)
		}
		results.Figure8 = &bench.Figure8Result{Rows: rows, GeoMean: gm}
		fmt.Fprintln(w)
	}
	if *all || *ablation {
		ran = true
		abl := &bench.Ablations{}
		fmt.Fprintln(w, "=== Ablation: patch tactics ===")
		tactics, err := bench.Tactics(*fillers, w)
		if err != nil {
			fatal(err)
		}
		abl.Tactics = tactics
		fmt.Fprintln(w, "\n=== Ablation: batch width (povray) ===")
		batches, err := bench.BatchSweep("povray", *scale, w)
		if err != nil {
			fatal(err)
		}
		abl.Batch = batches
		fmt.Fprintln(w, "\n=== Ablation: clobber specialization (sjeng) ===")
		clobber, err := bench.ClobberSweep("sjeng", *scale, w)
		if err != nil {
			fatal(err)
		}
		abl.Clobber = clobber
		fmt.Fprintln(w, "\n=== Ablation: coverage-guided profiling boost (h264ref) ===")
		fz, err := bench.FuzzBoostStudy("h264ref", []int{1, 50, 200}, w)
		if err != nil {
			fatal(err)
		}
		abl.Fuzz = fz
		results.Ablation = abl
		fmt.Fprintln(w)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if jsonFile != nil {
		if err := results.WriteJSON(jsonFile); err != nil {
			fatal(err)
		}
		if err := jsonFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "results written to %s\n", *jsonPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rfbench:", err)
	os.Exit(1)
}
