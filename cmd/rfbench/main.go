// rfbench regenerates the paper's evaluation tables and figures (§7).
//
// Usage:
//
//	rfbench -table1 [-scale 1.0]   SPEC CPU2006 slow-downs (Table 1)
//	rfbench -falsepos              false positives without the allow-list (§7.1)
//	rfbench -table2                CVE + Juliet detection (Table 2)
//	rfbench -figure8               Chrome/Kraken overhead (Figure 8)
//	rfbench -ablation              patch tactics and batch-width ablations
//	rfbench -all                   everything
package main

import (
	"flag"
	"fmt"
	"os"

	"redfat/internal/bench"
)

func main() {
	table1 := flag.Bool("table1", false, "run the SPEC CPU2006 performance table")
	falsepos := flag.Bool("falsepos", false, "run the false-positive experiment")
	table2 := flag.Bool("table2", false, "run the non-incremental detection table")
	figure8 := flag.Bool("figure8", false, "run the Chrome/Kraken experiment")
	ablation := flag.Bool("ablation", false, "run the ablation studies")
	all := flag.Bool("all", false, "run every experiment")
	scale := flag.Float64("scale", 1.0, "workload scale for table1/falsepos (1.0 = full ref)")
	fillers := flag.Int("fillers", 20000, "filler functions in the Chrome-scale image")
	kscale := flag.Uint64("kscale", 5000, "Kraken workload scale")
	flag.Parse()

	ran := false
	w := os.Stdout
	if *all || *table1 {
		ran = true
		fmt.Fprintf(w, "=== Table 1: SPEC CPU2006 (scale %.2f) ===\n", *scale)
		fmt.Fprintf(w, "%-12s %7s %12s %9s %9s %9s %9s %9s %9s %9s\n",
			"benchmark", "cover", "baseline", "unopt", "+elim", "+batch",
			"+merge", "-size", "-reads", "memcheck")
		if _, err := bench.Table1(*scale, w); err != nil {
			fatal(err)
		}
		fmt.Fprintln(w)
	}
	if *all || *falsepos {
		ran = true
		fmt.Fprintln(w, "=== §7.1 False positives (full checking, no allow-list) ===")
		if _, err := bench.FalsePositives(*scale, w); err != nil {
			fatal(err)
		}
		fmt.Fprintln(w)
	}
	if *all || *table2 {
		ran = true
		fmt.Fprintln(w, "=== Table 2: non-incremental bounds errors ===")
		if _, err := bench.Table2(w); err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, "--- extension: temporal errors (ours) ---")
		if _, err := bench.Table2Extended(w); err != nil {
			fatal(err)
		}
		fmt.Fprintln(w)
	}
	if *all || *figure8 {
		ran = true
		fmt.Fprintf(w, "=== Figure 8: Chrome/Kraken, write protection (%d fillers) ===\n", *fillers)
		if _, _, err := bench.Figure8(*fillers, *kscale, w); err != nil {
			fatal(err)
		}
		fmt.Fprintln(w)
	}
	if *all || *ablation {
		ran = true
		fmt.Fprintln(w, "=== Ablation: patch tactics ===")
		if _, err := bench.Tactics(*fillers, w); err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, "\n=== Ablation: batch width (povray) ===")
		if _, err := bench.BatchSweep("povray", *scale, w); err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, "\n=== Ablation: clobber specialization (sjeng) ===")
		if _, err := bench.ClobberSweep("sjeng", *scale, w); err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, "\n=== Ablation: coverage-guided profiling boost (h264ref) ===")
		if _, err := bench.FuzzBoostStudy("h264ref", []int{1, 50, 200}, w); err != nil {
			fatal(err)
		}
		fmt.Fprintln(w)
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rfbench:", err)
	os.Exit(1)
}
