// rfasm assembles RF64 assembly source into a RELF executable.
//
// Usage:
//
//	rfasm [-o prog.relf] prog.s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"redfat"
)

func main() {
	out := flag.String("o", "", "output file (default: input with .relf)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rfasm [-o out.relf] in.s\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	in := flag.Arg(0)
	src, err := os.ReadFile(in)
	if err != nil {
		fatal(err)
	}
	bin, err := redfat.Assemble(string(src))
	if err != nil {
		fatal(fmt.Errorf("%s: %w", in, err))
	}
	path := *out
	if path == "" {
		path = strings.TrimSuffix(in, ".s") + ".relf"
	}
	if err := redfat.SaveBinary(bin, path); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: entry %#x, %d bytes of text\n", path, bin.Entry, len(bin.Text().Data))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rfasm:", err)
	os.Exit(1)
}
