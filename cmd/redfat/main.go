// redfat is the binary-hardening tool: it rewrites a RELF binary with
// RedFat memory-error instrumentation (the paper's prog.orig → prog.hard
// step).
//
// Usage:
//
//	redfat [flags] -o prog.hard.relf prog.relf
//
// The default configuration is the fully optimized combined
// (Redzone)+(LowFat) check on reads and writes. Notable flags:
//
//	-allowlist f   use a profile-generated allow-list (see rfprofile)
//	-lowfat=false  redzone-only checking (the conservative baseline)
//	-reads=false   write-only protection (the paper's fastest mode)
//	-size=false    drop metadata hardening
//	-O0            disable all optimizations (elim/batch/merge/elimdom)
//	-profile       emit the profiling-phase binary of the Fig. 5 workflow
//	-verify        statically validate the rewriting before writing it
//	-analysis-report f  dump per-function dataflow statistics as JSON
//	-runpack DIR   capture the rewrite as a digest-signed runpack
//	               (input + hardened image + knobs) that `rfpack replay`
//	               re-hardens and diffs byte-for-byte (DESIGN.md §13)
package main

import (
	"flag"
	"fmt"
	"os"

	"redfat"
	"redfat/internal/runpack"
)

func main() {
	out := flag.String("o", "", "output file (required)")
	lowfat := flag.Bool("lowfat", true, "enable the combined lowfat+redzone check")
	reads := flag.Bool("reads", true, "instrument reads as well as writes")
	size := flag.Bool("size", true, "enable metadata (size) hardening")
	elim := flag.Bool("elim", true, "enable check elimination")
	batch := flag.Bool("batch", true, "enable check batching")
	merge := flag.Bool("merge", true, "enable check merging")
	elimDom := flag.Bool("elimdom", true, "enable dominator-based redundant-check elimination")
	localLive := flag.Bool("local-liveness", false, "restrict liveness to block-local scans (ablation)")
	noIndirect := flag.Bool("noindirect", false, "disable indirect-flow recovery in the dataflow engine (ablation)")
	noLibc := flag.Bool("nolibccheck", false, "record that the binary deploys without the hardened libc intrinsics")
	o0 := flag.Bool("O0", false, "disable all optimizations")
	profileMode := flag.Bool("profile", false, "build the profiling-phase binary")
	allowPath := flag.String("allowlist", "", "allow-list file from the profiling phase")
	maxBatch := flag.Int("maxbatch", 8, "maximum accesses per trampoline")
	verbose := flag.Bool("v", false, "print the instrumentation report")
	metricsPath := flag.String("metrics", "", "write the instrumentation metrics as JSON to this file")
	doVerify := flag.Bool("verify", false, "run the translation validator on the result and fail on violations")
	analysisPath := flag.String("analysis-report", "", "write per-function dataflow analysis statistics as JSON to this file")
	packDir := flag.String("runpack", "", "capture the rewrite as a digest-signed runpack in this directory")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: redfat [flags] -o out.relf in.relf\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 || *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	bin, err := redfat.LoadBinary(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	opt := redfat.Options{
		LowFat:        *lowfat,
		CheckReads:    *reads,
		SizeCheck:     *size,
		Elim:          *elim && !*o0,
		Batch:         *batch && !*o0,
		Merge:         *merge && !*o0,
		ElimDom:       *elimDom && !*o0,
		LocalLiveness: *localLive,
		NoIndirect:    *noIndirect,
		Profile:       *profileMode,
		MaxBatch:      *maxBatch,
		NoLibcCheck:   *noLibc,
	}
	var allowData []byte
	if *allowPath != "" {
		allow, err := redfat.LoadAllowList(*allowPath)
		if err != nil {
			fatal(err)
		}
		opt.AllowList = allow
		if allowData, err = os.ReadFile(*allowPath); err != nil {
			fatal(err)
		}
	}
	if *analysisPath != "" {
		a, err := redfat.Analyze(bin, opt)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*analysisPath)
		if err != nil {
			fatal(err)
		}
		if err := a.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	hard, rep, err := redfat.Harden(bin, opt)
	if err != nil {
		fatal(err)
	}
	if *doVerify {
		vrep, err := redfat.VerifyHardened(bin, hard)
		if err != nil {
			fatal(err)
		}
		if !vrep.OK() {
			vrep.Render(os.Stderr)
			fatal(fmt.Errorf("translation validation failed"))
		}
	}
	if err := redfat.SaveBinary(hard, *out); err != nil {
		fatal(err)
	}
	if *packDir != "" {
		origData, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		if err := runpack.PackRewrite(*packDir, os.Args[1:], origData, hard, opt, allowData, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("runpack written to %s\n", *packDir)
	}
	if *verbose {
		fmt.Println("redfat:", rep)
	}
	if *metricsPath != "" {
		reg := redfat.NewMetrics()
		rep.Publish(reg)
		f, err := os.Create(*metricsPath)
		if err != nil {
			fatal(err)
		}
		if err := reg.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("%s: %d checks in %d trampolines\n", *out, rep.Checks, rep.Batches)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "redfat:", err)
	os.Exit(1)
}
