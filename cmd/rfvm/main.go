// rfvm runs a RELF binary on the RF64 virtual machine.
//
// Usage:
//
//	rfvm [-input 1,2,3] [-hardened] [-memcheck] [-abort] [-max N] prog.relf
//
// Plain runs use the baseline glibc-style allocator. -hardened selects the
// RedFat runtime (the LD_PRELOAD model) and is required for binaries
// produced by the redfat tool. -memcheck runs under the Valgrind Memcheck
// model instead.
//
// Observability: -stats collects telemetry during the run and prints a
// report (retired instructions per opcode, allocator activity, check
// outcomes, RTCALL cost); -top bounds the hottest-site listing; -events N
// keeps and prints the last N execution events (alloc/free, trampoline
// dispatch, check verdicts). Telemetry never alters cycle accounting.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"redfat"
)

func main() {
	input := flag.String("input", "", "comma-separated input values for rf_input")
	hardened := flag.Bool("hardened", false, "run with the RedFat runtime (libredfat model)")
	mcheck := flag.Bool("memcheck", false, "run under the Memcheck model")
	abort := flag.Bool("abort", false, "abort on the first detected memory error")
	max := flag.Uint64("max", 0, "cycle budget (0 = default)")
	trace := flag.Int("trace", 0, "print an execution trace of up to N instructions")
	stats := flag.Bool("stats", false, "collect telemetry and print a run report")
	top := flag.Int("top", 10, "with -stats, hottest instrumentation sites to list")
	events := flag.Int("events", 0, "record and print the last N execution events")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rfvm [flags] prog.relf\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	bin, err := redfat.LoadBinary(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var in []uint64
	if *input != "" {
		for _, f := range strings.Split(*input, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(f), 0, 64)
			if err != nil {
				fatal(fmt.Errorf("bad -input value %q", f))
			}
			in = append(in, v)
		}
	}
	ro := redfat.RunOptions{
		Input:        in,
		Hardened:     *hardened,
		Memcheck:     *mcheck,
		AbortOnError: *abort,
		MaxCycles:    *max,
	}
	if *trace > 0 {
		ro.Trace = os.Stderr
		ro.TraceLimit = *trace
	}
	var reg *redfat.Metrics
	if *stats {
		reg = redfat.NewMetrics()
		ro.Metrics = reg
	}
	var tracer *redfat.EventTracer
	if *events > 0 {
		tracer = redfat.NewEventTracer(*events)
		ro.EventTrace = tracer
	}
	res, err := redfat.Run(bin, ro)
	if res != nil {
		if len(res.Output) > 0 {
			os.Stdout.Write(res.Output)
			fmt.Println()
		}
		for _, e := range res.Errors {
			fmt.Fprintf(os.Stderr, "rfvm: detected %v\n", &e)
			if e.Note != "" {
				fmt.Fprintf(os.Stderr, "      %s\n", e.Note)
			}
		}
		if n := len(res.Errors); n > 0 {
			fmt.Fprintf(os.Stderr, "rfvm: %d memory error(s) at %d distinct site(s)\n",
				n, redfat.DistinctErrorSites(res.Errors))
		}
		fmt.Printf("exit=%d cycles=%d instructions=%d\n", res.ExitCode, res.Cycles, res.Insts)
		if *stats && *top > 0 && len(res.Checks) > 0 {
			fmt.Printf("coverage %.1f%%; hottest checks:\n", res.Coverage*100)
			for i, c := range res.Checks {
				if i >= *top {
					break
				}
				fmt.Printf("  %#x %-8s ×%-3d %12d execs  %s\n",
					c.PC, c.Mode, c.Merged, c.Execs, c.Operand)
			}
		}
		if tracer != nil {
			fmt.Printf("--- last %d of %d execution events ---\n",
				len(tracer.Events()), tracer.Total())
			tracer.WriteText(os.Stdout)
		}
		if reg != nil {
			fmt.Println("--- telemetry ---")
			reg.WriteText(os.Stdout)
		}
	}
	if err != nil {
		fatal(err)
	}
	os.Exit(int(res.ExitCode & 0x7F))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rfvm:", err)
	os.Exit(1)
}
