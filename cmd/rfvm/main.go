// rfvm runs a RELF binary on the RF64 virtual machine.
//
// Usage:
//
//	rfvm [-input 1,2,3] [-hardened] [-memcheck] [-abort] [-max N] prog.relf
//
// Plain runs use the baseline glibc-style allocator. -hardened selects the
// RedFat runtime (the LD_PRELOAD model) and is required for binaries
// produced by the redfat tool. -memcheck runs under the Valgrind Memcheck
// model instead.
//
// Observability: -stats collects telemetry during the run and prints a
// report (retired instructions per opcode, allocator activity, check
// outcomes, RTCALL cost); -top bounds the hottest-site listing; -events N
// keeps and prints the last N execution events (alloc/free, trampoline
// dispatch, check verdicts). Telemetry never alters cycle accounting.
//
// Forensics: -forensics resolves each detected error into a symbolized
// ASan-style report (owning object, allocation/free backtraces);
// -profile-guest samples guest execution by cycle budget and prints a
// hot-site table; -folded FILE writes the profile as folded stacks
// (flamegraph input); -trace-out FILE writes a Chrome trace-event JSON
// (execution events plus profile samples) loadable in chrome://tracing.
// All of it is host-side only: guest cycles are bit-identical either way.
//
// Run artifacts: -runpack DIR captures the run as a digest-signed
// runpack (the executed binary, replay spec, packed result, forensic
// reports, telemetry, flight-recorder dump) that `rfpack verify`
// integrity-checks and `rfpack replay` reproduces byte-for-byte
// (DESIGN.md §13). -runpack implies forensics so detection reports are
// packed.
//
// Live introspection: -listen ADDR serves /metrics (Prometheus),
// /snapshot (telemetry JSON), /traces (the JIT trace table with
// per-reason deopt histograms), /profile (folded flamegraph) and
// /flight (the flight-recorder ring) over HTTP, publishing the final
// state after the run and serving until the process is killed
// (DESIGN.md §15). The server comes up before the run, serving the
// empty pre-run snapshot (handlers only ever read published immutable
// state, never the live ring or registry, so mid-run scrapes are
// safe); a run that fails outright reports its error and exits
// instead of serving. An always-on flight recorder keeps the last -flight
// events (block/trace entries, JIT compiles, deopts with reason, TLB
// flushes, check failures, budget aborts) and dumps to stderr
// automatically on a detection or budget abort. Both are host-side
// knobs: guest cycles are bit-identical with them on or off, and
// neither enters the runpack RunSpec.
//
// Exit codes are stable so runpack replay and CI scripts can assert on
// the detection kind:
//
//	0   clean run (and the guest exited 0)
//	1   tool or runtime failure
//	2   bad command line
//	10  out-of-bounds write detected
//	11  out-of-bounds read detected
//	12  use-after-free detected
//	13  corrupted-metadata detected
//	14  invalid free detected
//	20  cycle-budget abort
//
// When the guest itself exits nonzero without any detection, rfvm
// passes the guest code through masked to 7 bits; detection codes take
// precedence over the guest code.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"

	"redfat"
	"redfat/internal/runpack"
)

func main() {
	input := flag.String("input", "", "comma-separated input values for rf_input")
	hardened := flag.Bool("hardened", false, "run with the RedFat runtime (libredfat model)")
	mcheck := flag.Bool("memcheck", false, "run under the Memcheck model")
	abort := flag.Bool("abort", false, "abort on the first detected memory error")
	max := flag.Uint64("max", 0, "cycle budget (0 = default)")
	trace := flag.Int("trace", 0, "print an execution trace of up to N instructions")
	stats := flag.Bool("stats", false, "collect telemetry and print a run report")
	top := flag.Int("top", 10, "with -stats, hottest instrumentation sites to list")
	events := flag.Int("events", 0, "record and print the last N execution events")
	forensic := flag.Bool("forensics", false, "resolve detected errors into symbolized forensic reports")
	forensicJSON := flag.Bool("forensics-json", false, "with -forensics, also print the reports as JSON")
	profGuest := flag.Bool("profile-guest", false, "sample guest execution and print a hot-site profile")
	profInterval := flag.Uint64("profile-interval", 0, "guest cycles between profile samples (0 = default)")
	folded := flag.String("folded", "", "write the guest profile as folded stacks (flamegraph input) to FILE")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON (events + profile samples) to FILE")
	noBlock := flag.Bool("noblock", false, "disable the VM's basic-block cache (host A/B validation)")
	noChain := flag.Bool("nochain", false, "disable block chaining (host A/B validation)")
	noTLB := flag.Bool("notlb", false, "disable the guest-memory software TLB (host A/B validation)")
	noJIT := flag.Bool("nojit", false, "disable the superblock trace tier (host A/B validation)")
	noIndirect := flag.Bool("noindirect", false, "disable the recovered-edge monitor for marker-built binaries (host A/B validation)")
	jitThreshold := flag.Uint64("jit-threshold", 0, "block hotness before trace compilation (0 = default)")
	noLibc := flag.Bool("nolibccheck", false, "disable the hardened libc span intrinsics (ablation; guest-visible)")
	quarantine := flag.Int64("quarantine", 0, "free-quarantine byte budget (-1 disables, 0 default; hardened runs)")
	canary := flag.Bool("canary", false, "arm canary-poisoned redzones (verified on free and span checks; hardened runs)")
	underAlloc := flag.Uint64("underalloc", 0, "self-test: under-allocate ~1 in N heap objects by one byte (0 = off; hardened runs)")
	doVerify := flag.Bool("verify", false, "with -hardened, structurally validate the binary before running it")
	packDir := flag.String("runpack", "", "capture the run as a digest-signed runpack in this directory (implies forensics)")
	listen := flag.String("listen", "", "serve live introspection HTTP (/metrics /snapshot /traces /profile /flight) on ADDR until killed")
	flightCap := flag.Int("flight", 0, "flight-recorder ring capacity in events (0 = default)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rfvm [flags] prog.relf\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	bin, err := redfat.LoadBinary(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *doVerify {
		if !*hardened {
			fatal(fmt.Errorf("-verify requires -hardened"))
		}
		vrep, err := redfat.VerifyStructural(bin)
		if err != nil {
			fatal(err)
		}
		if !vrep.OK() {
			vrep.Render(os.Stderr)
			fatal(fmt.Errorf("binary failed structural validation"))
		}
	}
	var in []uint64
	if *input != "" {
		for _, f := range strings.Split(*input, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(f), 0, 64)
			if err != nil {
				fatal(fmt.Errorf("bad -input value %q", f))
			}
			in = append(in, v)
		}
	}
	ro := redfat.RunOptions{
		Input:        in,
		Hardened:     *hardened,
		Memcheck:     *mcheck,
		AbortOnError: *abort,
		MaxCycles:    *max,
		NoBlockCache: *noBlock,
		NoChain:      *noChain,
		NoTLB:        *noTLB,
		NoJIT:        *noJIT,
		NoIndirect:   *noIndirect,
		JITThreshold: *jitThreshold,

		NoLibcCheck:     *noLibc,
		QuarantineBytes: *quarantine,
		Canary:          *canary,
		UnderAllocEvery: *underAlloc,
	}
	if *trace > 0 {
		ro.Trace = os.Stderr
		ro.TraceLimit = *trace
	}
	var reg *redfat.Metrics
	if *stats {
		reg = redfat.NewMetrics()
		ro.Metrics = reg
	}
	var tracer *redfat.EventTracer
	if *events > 0 {
		tracer = redfat.NewEventTracer(*events)
		ro.EventTrace = tracer
	}
	if *traceOut != "" && tracer == nil {
		// The trace export needs the event ring even if -events is off.
		tracer = redfat.NewEventTracer(4096)
		ro.EventTrace = tracer
	}
	ro.Forensics = *forensic || *packDir != ""
	// The guest profiler needs interpreter-grain sampling, which pins
	// execution to tier 0 — so -listen alone must NOT enable it, or the
	// /traces endpoint would always be empty. /profile serves data only
	// when profiling is explicitly requested.
	var prof *redfat.GuestProfiler
	if *profGuest || *folded != "" || *traceOut != "" {
		prof = redfat.NewGuestProfiler(*profInterval)
		ro.Profiler = prof
	}
	// The flight recorder is always on: it costs nothing off the hot path
	// and its ring is deterministic in guest cycles.
	flight := redfat.NewFlight(*flightCap)
	ro.Flight = flight
	var srv *redfat.ObsServer
	if *listen != "" {
		if reg == nil {
			reg = redfat.NewMetrics()
			ro.Metrics = reg
		}
		ln, lerr := net.Listen("tcp", *listen)
		if lerr != nil {
			fatal(lerr)
		}
		srv = redfat.NewObsServer()
		srv.Publish(&redfat.ObsState{Telemetry: reg.Snapshot().StripHostTime()})
		fmt.Fprintf(os.Stderr, "rfvm: listening on http://%s\n", ln.Addr())
		go func() {
			if serr := redfat.ServeObs(ln, srv); serr != nil {
				fmt.Fprintln(os.Stderr, "rfvm: introspection server:", serr)
			}
		}()
	}
	res, err := redfat.Run(bin, ro)
	if res != nil {
		// -forensics prints the resolved reports; a bare -runpack only
		// packs them.
		showReports := *forensic
		sym := redfat.NewSymbolizer(bin)
		if len(res.Output) > 0 {
			os.Stdout.Write(res.Output)
			fmt.Println()
		}
		for _, e := range res.Errors {
			fmt.Fprintf(os.Stderr, "rfvm: detected %v\n", &e)
		}
		if showReports {
			for _, r := range res.Reports {
				if werr := r.WriteText(os.Stderr); werr != nil {
					fatal(werr)
				}
				if *forensicJSON {
					if werr := r.WriteJSON(os.Stderr); werr != nil {
						fatal(werr)
					}
				}
			}
		}
		if n := len(res.Errors); n > 0 {
			fmt.Fprintf(os.Stderr, "rfvm: %d memory error(s) at %d distinct site(s)\n",
				n, redfat.DistinctErrorSites(res.Errors))
		}
		// Dump the flight ring automatically when something went wrong:
		// a detection or a cycle-budget abort.
		var cle *redfat.CycleLimitError
		if len(res.Errors) > 0 || errors.As(err, &cle) {
			if werr := flight.Dump().WriteText(os.Stderr); werr != nil {
				fatal(werr)
			}
		}
		fmt.Printf("exit=%d cycles=%d instructions=%d\n", res.ExitCode, res.Cycles, res.Insts)
		if *stats && *top > 0 && len(res.Checks) > 0 {
			fmt.Printf("coverage %.1f%%; hottest checks:\n", res.Coverage*100)
			for i, c := range res.Checks {
				if i >= *top {
					break
				}
				fmt.Printf("  %#x %-8s ×%-3d %12d execs  %s\n",
					c.PC, c.Mode, c.Merged, c.Execs, c.Operand)
			}
		}
		if tracer != nil && *events > 0 {
			fmt.Printf("--- last %d of %d execution events ---\n",
				len(tracer.Events()), tracer.Total())
			tracer.WriteText(os.Stdout)
		}
		if reg != nil {
			// Host wall-clock series (.ns/.ms) are stripped so -stats output
			// depends only on guest-deterministic quantities.
			fmt.Println("--- telemetry ---")
			reg.Snapshot().StripHostTime().WriteText(os.Stdout)
			if rows := redfat.TraceRows(res.Traces, sym); len(rows) > 0 {
				fmt.Println("--- jit traces ---")
				writeTraceTable(os.Stdout, rows)
			}
		}
		if prof != nil && *profGuest {
			if werr := redfat.WriteHotSites(os.Stdout, prof, sym, *top); werr != nil {
				fatal(werr)
			}
		}
		if *folded != "" {
			if werr := writeFile(*folded, func(f *os.File) error {
				return redfat.WriteFolded(f, prof, sym)
			}); werr != nil {
				fatal(werr)
			}
		}
		if *traceOut != "" {
			if werr := writeFile(*traceOut, func(f *os.File) error {
				return redfat.WriteChromeTrace(f, tracer, prof, sym)
			}); werr != nil {
				fatal(werr)
			}
		}
		if srv != nil {
			st := &redfat.ObsState{
				Telemetry: reg.Snapshot().StripHostTime(),
				Traces:    redfat.TraceRows(res.Traces, sym),
				Flight:    flight.Dump(),
			}
			if prof != nil {
				var fb bytes.Buffer
				if werr := redfat.WriteFolded(&fb, prof, sym); werr == nil {
					st.Profile = fb.String()
				}
			}
			srv.Publish(st)
		}
	}
	if *packDir != "" && res != nil {
		raw, rerr := os.ReadFile(flag.Arg(0))
		if rerr != nil {
			fatal(rerr)
		}
		spec := runpack.RunSpec{
			Input:        in,
			Hardened:     *hardened,
			Memcheck:     *mcheck,
			Abort:        *abort,
			MaxCycles:    *max,
			Forensics:    true,
			NoJIT:        *noJIT,
			NoIndirect:   *noIndirect,
			JITThreshold: *jitThreshold,

			NoLibcCheck:     *noLibc,
			QuarantineBytes: *quarantine,
			Canary:          *canary,
			UnderAllocEvery: *underAlloc,
		}
		if perr := runpack.PackRun(*packDir, os.Args[1:], raw, bin, spec, res, err, reg, flight.Dump()); perr != nil {
			fatal(perr)
		}
		fmt.Fprintf(os.Stderr, "rfvm: runpack written to %s\n", *packDir)
	}
	if err != nil {
		// Detections were already rendered from res.Errors; anything else
		// (cycle budget, runtime failure) is reported here — before the
		// serve-forever branch, so -listen never swallows the diagnostic.
		var me *redfat.MemError
		if !errors.As(err, &me) {
			fmt.Fprintln(os.Stderr, "rfvm:", err)
		}
	}
	if srv != nil {
		if res == nil {
			// The run died before producing a result: there is nothing to
			// publish, so exit with the failure instead of serving the
			// empty pre-run snapshot forever.
			fmt.Fprintln(os.Stderr, "rfvm: run failed; not serving introspection")
		} else {
			// Keep serving the published final state until the process is
			// killed; the marker line lets scrapers synchronize on run
			// completion.
			fmt.Fprintln(os.Stderr, "rfvm: run complete; serving introspection until killed")
			select {}
		}
	}
	// Stable exit codes: detections and cycle-budget aborts map to their
	// documented codes (see the package comment); other failures exit 1;
	// clean runs pass the guest's exit code through.
	var guest uint64
	var errs []redfat.MemError
	if res != nil {
		guest, errs = res.ExitCode, res.Errors
	}
	os.Exit(runpack.RunExit(guest, errs, err))
}

// writeTraceTable renders the JIT trace table: one line per compiled
// superblock, slice-ordered (compilation order), with nonzero per-reason
// deopt counts appended in reason-enum order.
func writeTraceTable(f *os.File, rows []redfat.TraceRow) {
	for _, r := range rows {
		fmt.Fprintf(f, "  %#x-%#x %-24s steps=%-3d checks=%-3d elided=%-3d entries=%d",
			r.EntryPC, r.EndPC, r.Symbol, r.Steps, r.Checks, r.Elided, r.Entries)
		for _, d := range r.Deopts {
			fmt.Fprintf(f, " deopt.%s=%d", d.Reason, d.Count)
		}
		fmt.Fprintln(f)
	}
}

func writeFile(path string, fill func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rfvm:", err)
	os.Exit(1)
}
