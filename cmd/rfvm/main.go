// rfvm runs a RELF binary on the RF64 virtual machine.
//
// Usage:
//
//	rfvm [-input 1,2,3] [-hardened] [-memcheck] [-abort] [-max N] prog.relf
//
// Plain runs use the baseline glibc-style allocator. -hardened selects the
// RedFat runtime (the LD_PRELOAD model) and is required for binaries
// produced by the redfat tool. -memcheck runs under the Valgrind Memcheck
// model instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"redfat"
)

func main() {
	input := flag.String("input", "", "comma-separated input values for rf_input")
	hardened := flag.Bool("hardened", false, "run with the RedFat runtime (libredfat model)")
	mcheck := flag.Bool("memcheck", false, "run under the Memcheck model")
	abort := flag.Bool("abort", false, "abort on the first detected memory error")
	max := flag.Uint64("max", 0, "cycle budget (0 = default)")
	trace := flag.Int("trace", 0, "print an execution trace of up to N instructions")
	stats := flag.Int("stats", 0, "print the N hottest instrumentation sites after the run")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rfvm [flags] prog.relf\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	bin, err := redfat.LoadBinary(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var in []uint64
	if *input != "" {
		for _, f := range strings.Split(*input, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(f), 0, 64)
			if err != nil {
				fatal(fmt.Errorf("bad -input value %q", f))
			}
			in = append(in, v)
		}
	}
	ro := redfat.RunOptions{
		Input:        in,
		Hardened:     *hardened,
		Memcheck:     *mcheck,
		AbortOnError: *abort,
		MaxCycles:    *max,
	}
	if *trace > 0 {
		ro.Trace = os.Stderr
		ro.TraceLimit = *trace
	}
	res, err := redfat.Run(bin, ro)
	if res != nil {
		if len(res.Output) > 0 {
			os.Stdout.Write(res.Output)
			fmt.Println()
		}
		for _, e := range res.Errors {
			fmt.Fprintf(os.Stderr, "rfvm: detected %v\n", &e)
			if e.Note != "" {
				fmt.Fprintf(os.Stderr, "      %s\n", e.Note)
			}
		}
		fmt.Printf("exit=%d cycles=%d instructions=%d\n", res.ExitCode, res.Cycles, res.Insts)
		if *stats > 0 && len(res.Checks) > 0 {
			fmt.Printf("coverage %.1f%%; hottest checks:\n", res.Coverage*100)
			for i, c := range res.Checks {
				if i >= *stats {
					break
				}
				fmt.Printf("  %#x %-8s ×%-3d %12d execs  %s\n",
					c.PC, c.Mode, c.Merged, c.Execs, c.Operand)
			}
		}
	}
	if err != nil {
		fatal(err)
	}
	os.Exit(int(res.ExitCode & 0x7F))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rfvm:", err)
	os.Exit(1)
}
