// rfdis disassembles a RELF binary to AT&T-flavoured assembly.
//
// Usage:
//
//	rfdis [-bytes] [-leaders] prog.relf
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"redfat"
	"redfat/internal/dis"
)

func main() {
	showBytes := flag.Bool("bytes", false, "show instruction encodings")
	leaders := flag.Bool("leaders", false, "annotate recovered basic-block leaders")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rfdis [-bytes] [-leaders] prog.relf\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	bin, err := redfat.LoadBinary(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "rfdis:", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if err := dis.Binary(w, bin, dis.Options{
		ShowBytes:   *showBytes,
		ShowLeaders: *leaders,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "rfdis:", err)
		os.Exit(1)
	}
}
