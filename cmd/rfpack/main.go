// rfpack inspects, verifies, packages and replays runpacks — the
// digest-signed run artifacts emitted by rfvm -runpack, redfat -runpack
// and rfbench -runpack (see internal/runpack and DESIGN.md §13).
//
// Usage:
//
//	rfpack verify <pack>          re-check every digest and the manifest seal
//	rfpack replay <pack>          verify, re-execute, and diff byte-for-byte
//	rfpack show   <pack>          print the manifest JSON
//	rfpack tar    <dir> <out.tgz> write a deterministic tarball of a pack
//
// <pack> is a pack directory or a .tar.gz/.tgz produced by `rfpack tar`
// (replay of a tarball works too: members are read from the archive).
//
// Exit codes are stable for CI scripting:
//
//	0  pack verified / replay byte-identical
//	1  I/O or internal failure
//	2  bad command line
//	3  a member's content digest or size does not match the manifest
//	4  the manifest seal or the chained content digest is broken
//	5  a member is missing, renamed, or not listed in the manifest
//	6  unsupported manifest schema version / malformed manifest
//	7  replay diverged from the packed artifacts
package main

import (
	"fmt"
	"os"

	"redfat/internal/runpack"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) < 1 {
		usage()
		return runpack.ExitUsage
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "verify":
		if len(rest) != 1 {
			usage()
			return runpack.ExitUsage
		}
		return verify(rest[0])
	case "replay":
		if len(rest) != 1 {
			usage()
			return runpack.ExitUsage
		}
		return replay(rest[0])
	case "show":
		if len(rest) != 1 {
			usage()
			return runpack.ExitUsage
		}
		return show(rest[0])
	case "tar":
		if len(rest) != 2 {
			usage()
			return runpack.ExitUsage
		}
		return tarball(rest[0], rest[1])
	}
	usage()
	return runpack.ExitUsage
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: rfpack <command> ...
  rfpack verify <pack>           verify all digests and the manifest seal
  rfpack replay <pack>           verify, re-execute, and diff byte-for-byte
  rfpack show   <pack>           print the manifest JSON
  rfpack tar    <dir> <out.tgz>  write a deterministic tarball of a pack
`)
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "rfpack:", err)
	return runpack.ExitCode(err)
}

func verify(path string) int {
	man, err := runpack.VerifyPath(path)
	if err != nil {
		return fail(err)
	}
	fmt.Printf("rfpack: %s: %s pack (%s, schema %d), %d member(s) verified OK\n",
		path, man.Kind, man.Tool, man.SchemaVersion, len(man.Members))
	return runpack.ExitOK
}

func replay(path string) int {
	p, err := runpack.Open(path)
	if err != nil {
		return fail(err)
	}
	man, err := runpack.Verify(p)
	if err != nil {
		return fail(err)
	}
	rep, err := runpack.Replay(p, man)
	if err != nil {
		return fail(err)
	}
	if man.Kind == runpack.KindRun {
		fmt.Printf("rfpack: replayed %s pack: cycles %d (packed %d), exit %d (packed %d)\n",
			rep.Kind, rep.ReplayCycles, rep.PackedCycles, rep.ReplayExit, rep.PackedExit)
	}
	if err := rep.Err(); err != nil {
		return fail(err)
	}
	fmt.Printf("rfpack: %s: replay byte-identical across %v\n", path, rep.Compared)
	return runpack.ExitOK
}

func show(path string) int {
	p, err := runpack.Open(path)
	if err != nil {
		return fail(err)
	}
	data, err := p.ReadMember(runpack.ManifestName)
	if err != nil {
		return fail(err)
	}
	os.Stdout.Write(data)
	return runpack.ExitOK
}

func tarball(dir, out string) int {
	if _, err := runpack.VerifyPath(dir); err != nil {
		return fail(err)
	}
	f, err := os.Create(out)
	if err != nil {
		return fail(err)
	}
	if err := runpack.Tar(dir, f); err != nil {
		f.Close()
		return fail(err)
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	fmt.Printf("rfpack: wrote %s\n", out)
	return runpack.ExitOK
}
