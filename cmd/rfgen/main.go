// rfgen emits the evaluation corpora as RELF binaries on disk, so the
// command-line tools (redfat, rfprofile, rfvm, rfdis) can be exercised on
// the same programs the benchmark harness uses.
//
// Usage:
//
//	rfgen -spec  -o dir       the 29 SPEC CPU2006-like benchmarks
//	rfgen -cve   -o dir       the four CVE models
//	rfgen -juliet -o dir      the 480-case Juliet CWE-122 suite
//	rfgen -chrome -o dir      the Chrome-scale image
//	rfgen -switch -o dir      the switch-dense marker-built benchmarks
//	rfgen -adversarial -o dir the broken-jump-table negative corpus
//
// Each binary is accompanied by a ".input" file holding the ref workload
// (or attack) input vector, one value per line, usable with
// rfvm -input "$(paste -sd, prog.input)".
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"redfat"
	"redfat/internal/juliet"
	"redfat/internal/kraken"
	"redfat/internal/relf"
	"redfat/internal/workload"
)

func main() {
	out := flag.String("o", "corpus", "output directory")
	spec := flag.Bool("spec", false, "emit the SPEC-like suite")
	cve := flag.Bool("cve", false, "emit the CVE models")
	jl := flag.Bool("juliet", false, "emit the Juliet CWE-122 suite")
	chrome := flag.Bool("chrome", false, "emit the Chrome-scale image")
	fillers := flag.Int("fillers", 8000, "Chrome-scale filler functions")
	sw := flag.Bool("switch", false, "emit the switch-dense marker-built benchmarks")
	adv := flag.Bool("adversarial", false, "emit the broken-jump-table negative corpus")
	flag.Parse()
	if !*spec && !*cve && !*jl && !*chrome && !*sw && !*adv {
		flag.Usage()
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	n := 0
	emit := func(name string, bin *relf.Binary, input []uint64) {
		if err := redfat.SaveBinary(bin, filepath.Join(*out, name+".relf")); err != nil {
			fatal(err)
		}
		var txt []byte
		for _, v := range input {
			txt = append(txt, fmt.Sprintf("%d\n", v)...)
		}
		if err := os.WriteFile(filepath.Join(*out, name+".input"), txt, 0o644); err != nil {
			fatal(err)
		}
		n++
	}

	if *spec {
		for _, bm := range workload.All() {
			bin, err := bm.Build()
			if err != nil {
				fatal(err)
			}
			emit(bm.Name, bin, bm.RefInput())
		}
	}
	if *cve {
		for _, c := range juliet.CVECases() {
			bin, err := c.Build()
			if err != nil {
				fatal(err)
			}
			emit(c.ID, bin, juliet.Trigger(c))
		}
	}
	if *jl {
		for _, c := range juliet.JulietCases() {
			bin, err := c.Build()
			if err != nil {
				fatal(err)
			}
			emit(c.ID, bin, juliet.Trigger(c))
		}
	}
	if *chrome {
		bin, err := kraken.Build(*fillers)
		if err != nil {
			fatal(err)
		}
		emit("chrome", bin, []uint64{0, 5000})
	}
	if *sw {
		for _, bm := range workload.SwitchDense() {
			bin, err := bm.Build()
			if err != nil {
				fatal(err)
			}
			emit(bm.Name, bin, bm.RefInput())
		}
	}
	if *adv {
		for _, ac := range workload.Adversarial() {
			bin, err := ac.Build()
			if err != nil {
				fatal(err)
			}
			emit(ac.Bench.Name, bin, ac.Bench.RefInput())
		}
	}
	fmt.Printf("rfgen: wrote %d binaries to %s\n", n, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rfgen:", err)
	os.Exit(1)
}
