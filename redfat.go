// Package redfat is the public API of RedFat-Go: a reproduction of
// "Hardening Binaries against More Memory Errors" (Duck, Zhang, Yap —
// EuroSys 2022) as a Go library.
//
// RedFat hardens binaries against memory errors by combining two
// complementary detection methodologies — poisoned redzones and low-fat
// pointers — injected through E9Patch-style static trampoline rewriting,
// with a profile-based allow-list that suppresses low-fat false positives.
//
// This package operates on RELF binaries for the RF64 architecture (an
// x86-64 subset; see internal/isa), which the library can assemble, run
// on a deterministic virtual machine, instrument, and measure. The
// substitution of substrate (RF64 VM instead of native x86-64) is
// documented in DESIGN.md; every mechanism of the paper — the allocator
// layout, the combined check, the rewriting tactics, the optimizations,
// the two-phase workflow — is implemented faithfully on top of it.
//
// Basic use:
//
//	bin, _ := redfat.Assemble(src)            // or LoadBinary(path)
//	hard, rep, _ := redfat.Harden(bin, redfat.Defaults())
//	res, _ := redfat.Run(hard, redfat.RunOptions{Hardened: true})
package redfat

import (
	"fmt"
	"io"
	"net"
	"os"
	"sort"

	"redfat/internal/asm"
	"redfat/internal/forensics"
	"redfat/internal/memcheck"
	"redfat/internal/obs"
	"redfat/internal/profile"
	core "redfat/internal/redfat"
	"redfat/internal/relf"
	"redfat/internal/rtlib"
	"redfat/internal/telemetry"
	"redfat/internal/verify"
	"redfat/internal/vm"
)

// Binary is a RELF binary image (see internal/relf for the format).
type Binary = relf.Binary

// Options selects the instrumentation configuration (see
// internal/redfat.Options for field documentation).
type Options = core.Options

// Report summarizes an instrumentation run.
type Report = core.Report

// AllowList is a set of instruction addresses approved for full
// (Redzone)+(LowFat) checking.
type AllowList = profile.AllowList

// MemError is a detected memory error.
type MemError = vm.MemError

// CycleLimitError reports that execution exceeded the cycle budget.
type CycleLimitError = vm.CycleLimitError

// Metrics is a telemetry registry: counters, gauges and histograms filled
// in by the instrumented layers (VM dispatch, allocators, checks). Create
// one with NewMetrics, pass it in RunOptions, then export it with its
// Snapshot/WriteJSON/WritePrometheus/WriteText methods.
type Metrics = telemetry.Registry

// EventTracer is a bounded ring buffer of execution events (instruction
// retirement, trampoline dispatch, check outcomes, alloc/free). Create one
// with NewEventTracer and pass it in RunOptions.
type EventTracer = telemetry.Tracer

// GuestProfiler is a cycle-budget-driven guest PC sampler attached to
// the VM dispatch loop. Create one with NewGuestProfiler, pass it in
// RunOptions, then export it with WriteFolded/WriteHotSites.
type GuestProfiler = vm.GuestProfiler

// Flight is the always-on flight recorder: a fixed-size, allocation-free
// ring of recent VM events (block/trace entries, JIT compiles, deopts
// with reason, TLB flushes, icache generations, check failures, budget
// aborts), stamped in guest cycles. Create one with NewFlight, pass it
// in RunOptions, then export it with Dump. Host-side only: guest cycle
// accounting is bit-identical with it on or off.
type Flight = obs.Flight

// FlightDump is a flight recorder's serializable dump (see obs.FlightDump).
type FlightDump = obs.FlightDump

// TraceStat reports one compiled superblock's shape and runtime
// behaviour, including its per-reason deopt counts.
type TraceStat = vm.TraceStat

// ObsServer is the live introspection HTTP server serving /metrics,
// /snapshot, /traces, /profile and /flight from published State.
type ObsServer = obs.Server

// ObsState is one published introspection snapshot (telemetry, trace
// table, folded profile, flight dump).
type ObsState = obs.State

// TraceRow is one row of the /traces table.
type TraceRow = obs.TraceRow

// ErrorReport is a fully resolved memory error: symbolized PCs, guest
// stacks, and owning-object attribution (see internal/forensics).
type ErrorReport = forensics.ErrorReport

// Frame is one symbolized guest PC inside an ErrorReport or profile.
type Frame = forensics.Frame

// Symbolizer resolves guest PCs to function symbols across the modules
// of a run.
type Symbolizer = forensics.Symbolizer

// NewMetrics creates an empty telemetry registry.
func NewMetrics() *Metrics { return telemetry.New() }

// NewEventTracer creates an event tracer keeping the last capacity events.
func NewEventTracer(capacity int) *EventTracer { return telemetry.NewTracer(capacity) }

// NewGuestProfiler creates a guest sampling profiler firing every
// interval guest cycles (0 = the default interval).
func NewGuestProfiler(interval uint64) *GuestProfiler {
	return &vm.GuestProfiler{Interval: interval}
}

// NewSymbolizer builds a symbolizer over the given modules (stripped
// modules degrade to raw "<0x...>" addresses).
func NewSymbolizer(bins ...*Binary) *Symbolizer { return forensics.NewSymbolizer(bins...) }

// NewFlight creates a flight recorder retaining the last capacity events
// (0 = the default capacity).
func NewFlight(capacity int) *Flight { return obs.NewFlight(capacity) }

// NewObsServer creates a live introspection server. Publish State to it
// and mount its Handler (or use ServeObs). Endpoints serve only the
// published immutable snapshot — to expose a flight ring, dump it on the
// VM goroutine (or after Run) and publish the dump in ObsState.Flight;
// handlers never read the live ring, so scraping mid-run is safe.
func NewObsServer() *ObsServer { return obs.NewServer() }

// ServeObs serves the introspection endpoints on l until the listener
// closes (blocking; run it in a goroutine alongside the guest).
func ServeObs(l net.Listener, s *ObsServer) error { return obs.Serve(l, s) }

// TraceRows converts per-trace JIT statistics into /traces table rows,
// symbolizing entry PCs via sym (nil leaves rows unsymbolized) and
// expanding each trace's nonzero deopt counters in reason-enum order.
func TraceRows(stats []TraceStat, sym *Symbolizer) []TraceRow {
	rows := make([]TraceRow, 0, len(stats))
	for _, st := range stats {
		row := TraceRow{
			EntryPC: st.EntryPC,
			EndPC:   st.EndPC,
			Steps:   st.Steps,
			Checks:  st.Checks,
			Elided:  st.Elided,
			Entries: st.Entries,
		}
		if sym != nil {
			row.Symbol = sym.Format(st.EntryPC)
		}
		for r := vm.DeoptReason(0); int(r) < vm.NumDeoptReasons; r++ {
			if n := st.Deopts[r]; n != 0 {
				row.Deopts = append(row.Deopts, obs.DeoptCount{Reason: r.String(), Count: n})
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteFolded renders a profiler's aggregated stacks in folded
// (flamegraph) format, one "frames... cycles" line per unique stack.
func WriteFolded(w io.Writer, p *GuestProfiler, sym *Symbolizer) error {
	return forensics.WriteFolded(w, p, sym)
}

// WriteHotSites renders a profiler's per-PC hot-site table, hottest
// first; top bounds the rows (0 = all).
func WriteHotSites(w io.Writer, p *GuestProfiler, sym *Symbolizer, top int) error {
	return forensics.WriteHotSites(w, p, sym, top)
}

// WriteChromeTrace serializes an event tracer's retained events and a
// profiler's sample timeline (either may be nil) as Chrome trace-event
// JSON, loadable in chrome://tracing and Perfetto.
func WriteChromeTrace(w io.Writer, tr *EventTracer, p *GuestProfiler, sym *Symbolizer) error {
	return forensics.WriteChromeTrace(w, tr, p, sym)
}

// Defaults returns the fully optimized production configuration.
func Defaults() Options { return core.Defaults() }

// ErrorSites returns the set of distinct fault PCs among the errors.
func ErrorSites(errs []MemError) map[uint64]bool { return vm.ErrorSites(errs) }

// DistinctErrorSites counts the distinct fault PCs among the errors.
func DistinctErrorSites(errs []MemError) int { return vm.DistinctErrorSites(errs) }

// Assemble builds a RELF binary from RF64 assembly text.
func Assemble(src string) (*Binary, error) { return asm.Assemble(src) }

// LoadBinary reads a serialized RELF binary from a file.
func LoadBinary(path string) (*Binary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return relf.Unmarshal(data)
}

// SaveBinary writes a RELF binary to a file.
func SaveBinary(bin *Binary, path string) error {
	data, err := bin.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o755)
}

// Harden instruments a binary with the RedFat protection. The input is
// not modified; the returned binary is a drop-in replacement that must be
// run with the RedFat runtime (Run with Hardened: true, which models the
// LD_PRELOADed libredfat.so).
func Harden(bin *Binary, opt Options) (*Binary, *Report, error) {
	return core.Harden(bin, opt)
}

// VerifyReport is the outcome of a translation-validation run: summary
// counts plus every violation found (see internal/verify).
type VerifyReport = verify.Report

// VerifyViolation is one validation failure.
type VerifyViolation = verify.Violation

// VerifyHardened statically validates hard as a hardening of orig: every
// patched site round-trips through its trampoline, byte stealing never
// swallowed a jump target, the site table is referentially consistent,
// every trampoline saves at least the provably live state, and every
// operand the recorded policy selects is protected by a dominating or
// same-site check. Neither binary is executed.
func VerifyHardened(orig, hard *Binary) (*VerifyReport, error) {
	return verify.Verify(orig, hard)
}

// VerifyEdges audits the indirect-flow recovery against its own claims:
// the recovery pass runs over bin, and every recovered edge (jump-table
// slice, landing-pad set, RET pairing) is independently re-derived from
// the binary alone. Inert (empty report) for binaries that are not
// marker-built. Use it to audit a binary before hardening; VerifyHardened
// runs the same audit against the claims the rewriter actually consumed.
func VerifyEdges(bin *Binary) (*VerifyReport, error) {
	return verify.VerifyEdges(bin)
}

// VerifyStructural validates a hardened binary without its original:
// metadata decodes, trampolines reference valid check records exactly
// once (leaders first), and every trampoline returns to the text
// section. Weaker than VerifyHardened, but needs no reference binary.
func VerifyStructural(hard *Binary) (*VerifyReport, error) {
	return verify.Structural(hard)
}

// Analysis is the per-function dataflow report behind the
// -analysis-report flag (see internal/redfat.Analysis).
type Analysis = core.Analysis

// Analyze runs the whole-CFG dataflow engine over bin under the
// site-selection policy of opt and reports per-function statistics
// (blocks, edges, dominator depth, dead-register histogram, checks
// eliminated by each pass) without rewriting anything.
func Analyze(bin *Binary, opt Options) (*Analysis, error) {
	return core.Analyze(bin, opt)
}

// ProfileAndHarden runs the two-phase workflow of paper Fig. 5: profile
// the binary against the test-suite inputs, generate the allow-list, and
// produce the production binary.
func ProfileAndHarden(bin *Binary, testSuite [][]uint64, opt Options) (*Binary, AllowList, *Report, error) {
	suite := make([]rtlib.RunConfig, len(testSuite))
	for i, in := range testSuite {
		suite[i] = rtlib.RunConfig{Input: in}
	}
	return profile.Run(bin, suite, opt)
}

// RunOptions configures an execution.
type RunOptions struct {
	// Input is the program's input vector (consumed by rf_input).
	Input []uint64
	// MaxCycles bounds execution (0 = a large default).
	MaxCycles uint64
	// Hardened selects the RedFat runtime: the low-fat/redzone allocator
	// and the check routine (required for binaries produced by Harden).
	Hardened bool
	// Memcheck runs the binary under the Valgrind-Memcheck model
	// instead (redzone-only DBI; for comparisons).
	Memcheck bool
	// AbortOnError stops at the first detected memory error (hardening
	// deployments); otherwise errors are recorded and execution
	// continues (testing/profiling).
	AbortOnError bool
	// RandomizeHeap enables low-fat allocator placement randomization.
	RandomizeHeap bool
	// NoLibcCheck disables the hardened libc span intrinsics (and, under
	// Memcheck, its libc interposition), reverting the modelled libc to
	// unchecked baseline bindings. Guest-visible — span checks charge
	// cycles and produce detections — so it is recorded in runpacks.
	NoLibcCheck bool
	// QuarantineBytes overrides the redzone heap's delayed-reuse
	// quarantine budget (-1 disables quarantine, 0 keeps the default,
	// >0 sets the byte budget). Hardened runs only.
	QuarantineBytes int64
	// Canary arms canary-poisoned redzones: allocation slack is filled
	// with a canary byte verified on free and on span-check crossings.
	// Hardened runs only.
	Canary bool
	// UnderAllocEvery, when >0, under-allocates roughly one in every N
	// heap objects by one byte (the REDFAT_TEST self-test mode,
	// deterministic via the VM's random stream). Hardened runs only.
	UnderAllocEvery uint64
	// Trace, when set, receives an execution trace (one disassembled
	// instruction per line), capped at TraceLimit lines (0 = 10000).
	Trace      io.Writer
	TraceLimit int
	// Metrics, when set, collects counters/gauges/histograms from every
	// instrumented layer. Telemetry is host-side only and never perturbs
	// guest cycle accounting.
	Metrics *Metrics
	// EventTrace, when set, records execution events into its ring buffer.
	EventTrace *EventTracer
	// NoBlockCache runs the VM on its legacy per-instruction decode cache
	// instead of the basic-block cache. Guest-visible results (cycles,
	// errors, output) are identical either way; the knob exists for
	// host-performance A/B measurement and validation.
	NoBlockCache bool
	// NoChain disables block chaining (cached block→successor links)
	// while keeping the block cache. Same identity guarantee.
	NoChain bool
	// NoTLB disables the guest-memory software TLB, forcing every page
	// access through the page-map lookup. Same identity guarantee.
	NoTLB bool
	// NoJIT disables the superblock tier (compiled traces over hot
	// chained blocks). Same identity guarantee.
	NoJIT bool
	// NoIndirect disables the recovered-edge soundness monitor armed for
	// marker-built (.rf.jt) binaries. Landing-pad enforcement itself is
	// binary semantics and is unaffected. Same identity guarantee.
	NoIndirect bool
	// JITThreshold overrides the block-hotness threshold before trace
	// compilation (0 keeps the default).
	JITThreshold uint64
	// Forensics enables allocation-site tracking (guest backtraces per
	// malloc/free) and error backtrace capture, and fills Result.Reports
	// with fully resolved error reports. Host-side only: guest cycle
	// counts are bit-identical with it on or off.
	Forensics bool
	// ForensicsDepth bounds the captured backtraces (0 = default 8).
	ForensicsDepth int
	// Profiler, when set, samples guest execution by cycle budget from
	// the VM dispatch loop. Host-side only.
	Profiler *GuestProfiler
	// Flight, when set, is the always-on flight recorder fed by the VM
	// and guest memory. Unlike NoJIT/Profiler it never changes which
	// execution tier runs, and its ring content is deterministic in
	// guest cycles. Host-side only.
	Flight *Flight
}

// CheckStat reports one instrumentation site's runtime behaviour.
type CheckStat struct {
	PC           uint64 // original instruction address
	Operand      string // the checked memory operand (AT&T syntax)
	Mode         string // "full", "redzone" or "profile"
	Merged       int    // original operands covered by this check
	Execs        uint64 // times the check executed
	LowFatFails  uint64 // violations flagged via the base(ptr) LowFat path
	RedzoneFails uint64 // violations flagged via the base(LB) fallback
}

// Result reports an execution.
type Result struct {
	ExitCode uint64
	Cycles   uint64
	Insts    uint64
	Output   []byte
	// Errors are the detected memory errors (also returned as the run
	// error when AbortOnError is set).
	Errors []MemError
	// Coverage is the fraction of executed checks running in full
	// (Redzone)+(LowFat) mode; only set for hardened runs.
	Coverage float64
	// Checks holds per-site statistics, sorted by execution count
	// (hardened runs only).
	Checks []CheckStat
	// Reports are the forensic resolutions of Errors, in the same order
	// (only set when RunOptions.Forensics is on).
	Reports []*ErrorReport
	// Traces holds per-trace superblock statistics (compilation order),
	// including per-reason deopt counts; nil when the JIT compiled
	// nothing.
	Traces []TraceStat
}

// Run executes a binary on the RF64 VM.
func Run(bin *Binary, opt RunOptions) (*Result, error) {
	cfg := rtlib.RunConfig{
		Input:           opt.Input,
		MaxCycles:       opt.MaxCycles,
		Abort:           opt.AbortOnError,
		RandomizeHeap:   opt.RandomizeHeap,
		NoLibcCheck:     opt.NoLibcCheck,
		QuarantineBytes: opt.QuarantineBytes,
		Canary:          opt.Canary,
		UnderAllocEvery: opt.UnderAllocEvery,
		TraceWriter:     opt.Trace,
		TraceLimit:      opt.TraceLimit,
		Metrics:         opt.Metrics,
		EventTrace:      opt.EventTrace,
		NoBlockCache:    opt.NoBlockCache,
		NoChain:         opt.NoChain,
		NoTLB:           opt.NoTLB,
		NoJIT:           opt.NoJIT,
		NoIndirect:      opt.NoIndirect,
		JITThreshold:    opt.JITThreshold,
		Forensics:       opt.Forensics,
		ForensicsDepth:  opt.ForensicsDepth,
		Profiler:        opt.Profiler,
		Flight:          opt.Flight,
	}
	var (
		v   *vm.VM
		rt  *rtlib.Runtime
		err error
	)
	switch {
	case opt.Memcheck && opt.Hardened:
		return nil, fmt.Errorf("redfat: Memcheck and Hardened are mutually exclusive")
	case opt.Memcheck:
		v, err = memcheck.Run(bin, cfg)
	case opt.Hardened:
		v, rt, err = rtlib.RunHardened(bin, cfg)
	default:
		v, err = rtlib.RunBaseline(bin, cfg)
	}
	res := &Result{}
	if v != nil {
		res.ExitCode = v.ExitCode
		res.Cycles = v.Cycles
		res.Insts = v.Insts
		res.Output = v.Output
		res.Errors = v.Errors
		res.Traces = v.TraceStats()
		if opt.Forensics {
			res.Reports = buildReports(v, bin)
		}
	}
	if rt != nil {
		res.Coverage = rt.Coverage()
		rt.PublishSiteStats(opt.Metrics)
		for i := range rt.Checks {
			c := &rt.Checks[i]
			res.Checks = append(res.Checks, CheckStat{
				PC:           c.PC,
				Operand:      c.Operand.String(),
				Mode:         c.Mode.String(),
				Merged:       int(c.Merged),
				Execs:        rt.Stats[i].Execs,
				LowFatFails:  rt.Stats[i].LowFatFails,
				RedzoneFails: rt.Stats[i].RedzoneFails,
			})
		}
		sort.Slice(res.Checks, func(i, j int) bool {
			return res.Checks[i].Execs > res.Checks[j].Execs
		})
	}
	return res, err
}

// RunLinked executes a dynamically linked program: the main executable
// plus shared-object dependencies (paper §7.4). Each module may be
// hardened independently; only instrumented modules are protected.
// Libraries must be built (or rebased) at non-overlapping addresses
// before hardening. Memcheck mode is not supported for linked programs.
func RunLinked(main *Binary, libs []*Binary, opt RunOptions) (*Result, error) {
	if opt.Memcheck {
		return nil, fmt.Errorf("redfat: Memcheck does not support linked programs")
	}
	cfg := rtlib.RunConfig{
		Input:           opt.Input,
		MaxCycles:       opt.MaxCycles,
		Abort:           opt.AbortOnError,
		RandomizeHeap:   opt.RandomizeHeap,
		NoLibcCheck:     opt.NoLibcCheck,
		QuarantineBytes: opt.QuarantineBytes,
		Canary:          opt.Canary,
		UnderAllocEvery: opt.UnderAllocEvery,
		TraceWriter:     opt.Trace,
		TraceLimit:      opt.TraceLimit,
		Metrics:         opt.Metrics,
		EventTrace:      opt.EventTrace,
		NoBlockCache:    opt.NoBlockCache,
		NoChain:         opt.NoChain,
		NoTLB:           opt.NoTLB,
		NoJIT:           opt.NoJIT,
		NoIndirect:      opt.NoIndirect,
		JITThreshold:    opt.JITThreshold,
		Forensics:       opt.Forensics,
		ForensicsDepth:  opt.ForensicsDepth,
		Profiler:        opt.Profiler,
		Flight:          opt.Flight,
	}
	v, rts, err := rtlib.RunLinked(main, libs, cfg)
	res := &Result{}
	if v != nil {
		res.ExitCode = v.ExitCode
		res.Cycles = v.Cycles
		res.Insts = v.Insts
		res.Output = v.Output
		res.Errors = v.Errors
		res.Traces = v.TraceStats()
		if opt.Forensics {
			res.Reports = buildReports(v, append([]*Binary{main}, libs...)...)
		}
	}
	var full, total int
	for _, rt := range rts {
		rt.PublishSiteStats(opt.Metrics)
		for i := range rt.Checks {
			if rt.Stats[i].Execs == 0 {
				continue
			}
			total += int(rt.Checks[i].Merged)
			if rt.Checks[i].Mode.String() == "full" {
				full += int(rt.Checks[i].Merged)
			}
		}
	}
	if total > 0 {
		res.Coverage = float64(full) / float64(total)
	}
	return res, err
}

// buildReports resolves a finished VM's trapped errors into forensic
// reports, symbolizing against the run's modules and attributing faults
// to the allocator the VM parked in its Allocator field.
func buildReports(v *vm.VM, bins ...*Binary) []*ErrorReport {
	if len(v.Errors) == 0 {
		return nil
	}
	alloc := v.Allocator
	if w, ok := alloc.(*memcheck.Wrapper); ok {
		alloc = w.H // attribute against the underlying baseline heap
	}
	rep := forensics.NewReporter(forensics.NewSymbolizer(bins...), alloc)
	return rep.ReportAll(v.Errors)
}

// SaveAllowList writes an allow-list to a file.
func SaveAllowList(a AllowList, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return a.Save(f)
}

// LoadAllowList reads an allow-list from a file.
func LoadAllowList(path string) (AllowList, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return profile.Load(f)
}
